//! A small scoped thread pool built on `std::thread` and channels.
//!
//! The build environment has no registry access, so this vendored-style
//! module replaces `rayon`/`scoped_threadpool` with the few hundred lines
//! the parallel kernels actually need: a fixed set of workers fed through
//! an `mpsc` channel, a scoped spawn API that can borrow from the caller's
//! stack, panic propagation back to the caller, clean shutdown on drop and
//! a `SMASH_THREADS` environment override.

use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Name of the environment variable overriding the worker count.
pub const THREADS_ENV: &str = "SMASH_THREADS";

/// Worker count used when none is given explicitly: the `SMASH_THREADS`
/// environment variable if set to a positive integer, otherwise the
/// machine's available parallelism.
///
/// A malformed override silently falls back to the hardware count — the
/// forgiving behaviour the panicking tier has always had. Callers that
/// must *report* a bad override (the executor's `try_*` tier) use
/// [`threads_from_env`] instead, which returns a typed error.
pub fn default_threads() -> usize {
    threads_from_env()
        .ok()
        .flatten()
        .unwrap_or_else(hardware_threads)
}

/// A malformed `SMASH_THREADS` override, reported by [`threads_from_env`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadsEnvError {
    /// The raw value of the environment variable (lossily decoded if it
    /// was not valid Unicode).
    pub raw: String,
}

impl std::fmt::Display for ThreadsEnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{THREADS_ENV} must be a positive integer, got {:?}",
            self.raw
        )
    }
}

impl std::error::Error for ThreadsEnvError {}

/// Reads the `SMASH_THREADS` override, distinguishing "unset" from
/// "invalid".
///
/// Returns `Ok(None)` when the variable is unset, `Ok(Some(n))` for a
/// positive integer, and a typed [`ThreadsEnvError`] for anything else
/// (zero, garbage, non-Unicode) — instead of the silent hardware-count
/// fallback of [`default_threads`].
///
/// # Errors
///
/// Returns [`ThreadsEnvError`] carrying the rejected raw value.
pub fn threads_from_env() -> Result<Option<usize>, ThreadsEnvError> {
    match std::env::var(THREADS_ENV) {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(ThreadsEnvError { raw: s }),
        },
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(raw)) => Err(ThreadsEnvError {
            raw: raw.to_string_lossy().into_owned(),
        }),
    }
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads with a scoped execution API.
///
/// A pool of one thread spawns no workers at all: every job runs inline on
/// the calling thread, so `SMASH_THREADS=1` degenerates to fully serial
/// execution.
///
/// # Example
///
/// ```
/// use smash_parallel::ThreadPool;
///
/// let pool = ThreadPool::new(4);
/// let mut parts = [0u64; 4];
/// pool.scoped(|scope| {
///     for (i, slot) in parts.iter_mut().enumerate() {
///         scope.execute(move || *slot = i as u64 + 1);
///     }
/// });
/// assert_eq!(parts.iter().sum::<u64>(), 10);
/// ```
#[derive(Debug)]
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool with `threads` workers. `0` means "use
    /// [`default_threads`]" (which honours `SMASH_THREADS`).
    ///
    /// # Panics
    ///
    /// Panics if the operating system refuses to spawn a worker thread.
    /// Fallible callers (the executor's `try_*` tier) use [`try_new`]
    /// instead.
    ///
    /// [`try_new`]: Self::try_new
    pub fn new(threads: usize) -> Self {
        Self::try_new(threads).expect("spawning a worker thread")
    }

    /// Fallible variant of [`new`](Self::new): surfaces an OS refusal to
    /// spawn a worker as an error instead of panicking. Workers already
    /// spawned before the failure are shut down and joined, so an `Err`
    /// leaks no threads.
    ///
    /// # Errors
    ///
    /// Returns the spawn error from the operating system.
    pub fn try_new(threads: usize) -> std::io::Result<Self> {
        let threads = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        #[cfg(feature = "fault-injection")]
        crate::faultinject::maybe_fail_io(crate::faultinject::Site::PoolSpawn)?;
        if threads == 1 {
            return Ok(ThreadPool {
                sender: None,
                workers: Vec::new(),
                threads: 1,
            });
        }
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let receiver = Arc::clone(&receiver);
            let spawned = std::thread::Builder::new()
                .name(format!("smash-worker-{i}"))
                .spawn(move || loop {
                    // Hold the receiver lock only while dequeuing, not
                    // while running the job.
                    let job = {
                        let guard = lock(&receiver);
                        guard.recv()
                    };
                    match job {
                        Ok(job) => job(),
                        Err(_) => break, // pool dropped: shut down
                    }
                });
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Close the channel so the workers spawned so far see
                    // a failed `recv` and exit, then join them.
                    drop(sender);
                    for worker in workers {
                        let _ = worker.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(ThreadPool {
            sender: Some(sender),
            workers,
            threads,
        })
    }

    /// Creates a pool sized by [`default_threads`] (`SMASH_THREADS` if set,
    /// else the machine's available parallelism).
    pub fn with_default_threads() -> Self {
        Self::new(default_threads())
    }

    /// Number of threads jobs may run on (including the inline-serial case
    /// of a 1-thread pool).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] on which borrowing jobs can be spawned.
    ///
    /// Returns only after every spawned job has completed, which is what
    /// makes lending stack data to the workers sound. If any job panicked,
    /// the first panic payload is re-raised on the calling thread after all
    /// jobs have finished — a worker panic surfaces as a propagated panic,
    /// never as a hang or a poisoned pool.
    pub fn scoped<'pool, 'scope, F, R>(&'pool self, f: F) -> R
    where
        F: FnOnce(&Scope<'pool, 'scope>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState::new()),
            _marker: PhantomData,
        };
        // The wait must also happen when `f` itself panics: the guard's
        // drop runs during unwinding, so in-flight jobs finish before the
        // caller's stack frame (and the borrows they capture) is popped.
        struct WaitGuard<'a>(&'a ScopeState);
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                self.0.wait_all();
            }
        }
        let result = {
            let _guard = WaitGuard(&scope.state);
            f(&scope)
        };
        if let Some(payload) = lock(&scope.state.panic).take() {
            resume_unwind(payload);
        }
        result
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel makes every idle worker's `recv` fail, so
        // they drain outstanding jobs and exit; then join them all.
        self.sender = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Synchronisation shared between a [`Scope`] and its in-flight jobs.
struct ScopeState {
    pending: Mutex<usize>,
    all_done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl std::fmt::Debug for ScopeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopeState")
            .field("pending", &*lock(&self.pending))
            .field("panicked", &lock(&self.panic).is_some())
            .finish()
    }
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            pending: Mutex::new(0),
            all_done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Marks one job finished, recording its panic payload if any.
    fn complete(&self, payload: Option<Box<dyn Any + Send>>) {
        if let Some(p) = payload {
            lock(&self.panic).get_or_insert(p);
        }
        let mut pending = lock(&self.pending);
        *pending -= 1;
        if *pending == 0 {
            self.all_done.notify_all();
        }
    }

    /// Blocks until every spawned job has completed.
    fn wait_all(&self) {
        let mut pending = lock(&self.pending);
        while *pending > 0 {
            pending = self
                .all_done
                .wait(pending)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Locks a mutex, ignoring poisoning: jobs run under `catch_unwind`, so a
/// panicking job never leaves shared state half-updated.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Handle for spawning jobs that may borrow data outliving the scope.
///
/// Created by [`ThreadPool::scoped`]; `'scope` is the lifetime of the
/// borrows the jobs are allowed to capture.
#[derive(Debug)]
pub struct Scope<'pool, 'scope> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'_, 'scope> {
    /// Spawns one job on the pool. On a 1-thread pool the job runs
    /// immediately on the calling thread.
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        *lock(&self.state.pending) += 1;
        let state = Arc::clone(&self.state);
        // Fault-injection hook: the injected panic must originate *inside*
        // the `catch_unwind` below — a panic outside it would kill the
        // worker's run loop without decrementing `pending` and deadlock
        // `wait_all`, which is exactly the failure mode the harness exists
        // to rule out.
        #[cfg(feature = "fault-injection")]
        let f = move || {
            crate::faultinject::maybe_panic(crate::faultinject::Site::WorkerJob);
            f()
        };
        let task = move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            state.complete(result.err());
        };
        match &self.pool.sender {
            Some(sender) => {
                let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(task);
                // SAFETY: `ThreadPool::scoped` blocks in `wait_all` until
                // every job spawned on this scope has completed before it
                // returns — on the normal path and, via its wait guard's
                // drop, when the scope closure unwinds — so all `'scope`
                // borrows captured by `f` outlive the job even though the
                // channel requires `'static`.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
                if let Err(send_error) = sender.send(job) {
                    // Unreachable while the pool is alive (workers hold the
                    // receiver), but run inline rather than losing the job.
                    (send_error.0)();
                }
            }
            None => task(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_jobs_borrow_and_mutate_stack_data() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 64];
        pool.scoped(|s| {
            for (i, chunk) in data.chunks_mut(16).enumerate() {
                s.execute(move || {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = i * 16 + j;
                    }
                });
            }
        });
        assert_eq!(data, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates_instead_of_hanging() {
        let pool = ThreadPool::new(3);
        let completed = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|s| {
                s.execute(|| panic!("boom in worker"));
                for _ in 0..8 {
                    s.execute(|| {
                        completed.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("payload preserved");
        assert_eq!(msg, "boom in worker");
        // All sibling jobs still ran to completion before the propagation.
        assert_eq!(completed.load(Ordering::SeqCst), 8);
        // And the pool is still usable afterwards.
        let mut x = 0u32;
        pool.scoped(|s| s.execute(|| x = 7));
        assert_eq!(x, 7);
    }

    #[test]
    fn panic_in_scope_closure_still_waits_for_jobs() {
        // The scope closure itself panics after spawning borrowing jobs:
        // the wait guard must let every job finish before the unwind pops
        // the caller's frame (otherwise workers would write freed stack).
        let pool = ThreadPool::new(4);
        let finished = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|s| {
                for _ in 0..16 {
                    s.execute(|| {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        finished.fetch_add(1, Ordering::SeqCst);
                    });
                }
                panic!("scope closure panics");
            });
        }));
        assert!(caught.is_err());
        assert_eq!(
            finished.load(Ordering::SeqCst),
            16,
            "all jobs must complete before the unwind escapes scoped()"
        );
    }

    #[test]
    fn serial_pool_panic_also_propagates() {
        let pool = ThreadPool::new(1);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|s| s.execute(|| panic!("serial boom")));
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn pool_drops_cleanly_after_work() {
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(4);
            pool.scoped(|s| {
                for _ in 0..32 {
                    let ran = Arc::clone(&ran);
                    s.execute(move || {
                        ran.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        } // drop joins all workers
        assert_eq!(ran.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn one_thread_pool_runs_inline_on_caller() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let caller = std::thread::current().id();
        let mut seen = None;
        pool.scoped(|s| s.execute(|| seen = Some(std::thread::current().id())));
        assert_eq!(seen, Some(caller), "1-thread pool must be serial");
    }

    /// Serializes every test that writes or reads `SMASH_THREADS`:
    /// concurrent `setenv`/`getenv` is undefined behaviour on glibc, and
    /// libtest runs tests on parallel threads.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn env_override_controls_default_thread_count() {
        let _guard = lock(&ENV_LOCK);
        std::env::set_var(THREADS_ENV, "1");
        assert_eq!(default_threads(), 1);
        let pool = ThreadPool::with_default_threads();
        assert_eq!(pool.threads(), 1);
        assert!(pool.workers.is_empty(), "serial pool spawns no threads");

        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(default_threads(), 3);

        std::env::set_var(THREADS_ENV, "not-a-number");
        assert_eq!(default_threads(), hardware_threads());
        std::env::set_var(THREADS_ENV, "0");
        assert_eq!(default_threads(), hardware_threads());
        std::env::remove_var(THREADS_ENV);
        assert_eq!(default_threads(), hardware_threads());
    }

    #[test]
    fn zero_requested_threads_falls_back_to_default() {
        // `new(0)` reads SMASH_THREADS via default_threads().
        let _guard = lock(&ENV_LOCK);
        let pool = ThreadPool::new(0);
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn simultaneous_worker_panics_surface_exactly_one_payload() {
        // Four workers all panic at the same instant (released by a
        // barrier). Exactly one payload must surface — the first recorded
        // — with no deadlock, and the pool must stay usable.
        let pool = ThreadPool::new(4);
        let barrier = std::sync::Barrier::new(4);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|s| {
                for i in 0..4 {
                    let barrier = &barrier;
                    s.execute(move || {
                        barrier.wait();
                        panic!("simultaneous boom {i}");
                    });
                }
            });
        }));
        let payload = caught.expect_err("one panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("payload preserved")
            .clone();
        assert!(
            msg.starts_with("simultaneous boom "),
            "unexpected payload: {msg}"
        );
        // The pool survived four concurrent panics.
        let mut x = 0u32;
        pool.scoped(|s| s.execute(|| x = 7));
        assert_eq!(x, 7);
    }

    #[test]
    fn pool_drop_after_panicked_scope_is_clean() {
        // Dropping the pool right after a scope whose jobs panicked must
        // join all workers without hanging or double-panicking.
        let pool = ThreadPool::new(3);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|s| {
                for _ in 0..6 {
                    s.execute(|| panic!("boom before drop"));
                }
            });
        }));
        assert!(caught.is_err());
        drop(pool); // must not hang or panic
    }

    #[test]
    fn threads_from_env_rejects_garbage_with_typed_error() {
        let _guard = lock(&ENV_LOCK);
        std::env::set_var(THREADS_ENV, "not-a-number");
        let err = threads_from_env().expect_err("garbage must be rejected");
        assert_eq!(err.raw, "not-a-number");
        assert!(err.to_string().contains(THREADS_ENV));

        std::env::set_var(THREADS_ENV, "0");
        assert_eq!(
            threads_from_env(),
            Err(ThreadsEnvError { raw: "0".into() }),
            "zero threads is invalid, not a silent default"
        );

        std::env::set_var(THREADS_ENV, " 5 ");
        assert_eq!(threads_from_env(), Ok(Some(5)), "whitespace is trimmed");

        std::env::remove_var(THREADS_ENV);
        assert_eq!(threads_from_env(), Ok(None), "unset is not an error");
    }

    #[test]
    fn try_new_builds_a_working_pool() {
        let pool = ThreadPool::try_new(2).expect("spawn succeeds");
        assert_eq!(pool.threads(), 2);
        let counter = AtomicUsize::new(0);
        pool.scoped(|s| {
            for _ in 0..8 {
                s.execute(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn many_more_jobs_than_workers() {
        let pool = ThreadPool::new(2);
        let counter = AtomicUsize::new(0);
        pool.scoped(|s| {
            for _ in 0..200 {
                s.execute(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 200);
    }
}
