//! Deterministic fault injection for robustness testing (compiled only
//! under the `fault-injection` cargo feature).
//!
//! The harness arms a [`FaultPlan`] — a set of (site, nth-occurrence)
//! triggers — and the instrumented sites in the pool and the executor
//! consult it on every pass. A trigger fires exactly once, at the chosen
//! occurrence, and fires *deterministically*: the same plan against the
//! same workload injects the same fault, so a failing seed reproduces.
//!
//! Sites:
//!
//! * [`Site::WorkerJob`] — a pool job panics (from *inside* the worker's
//!   `catch_unwind`, the only place a real job panic can originate);
//! * [`Site::PoolSpawn`] — [`ThreadPool::try_new`] fails as if the OS
//!   refused to spawn a thread;
//! * [`Site::BudgetCheck`] — the executor's SpGEMM budget check reports
//!   exhaustion regardless of the real estimate.
//!
//! Arming returns a RAII [`Session`] that holds a global test-serialization
//! lock (plans are process-global state, so two concurrently armed tests
//! would race) and disarms on drop — a panicking test cannot leave a plan
//! armed for its neighbours.
//!
//! ```
//! use smash_parallel::faultinject::{self, FaultPlan, Site};
//! use smash_parallel::ThreadPool;
//!
//! let session = faultinject::arm(FaultPlan::new().fail_at(Site::PoolSpawn, 1));
//! assert!(ThreadPool::try_new(4).is_err(), "first spawn is injected to fail");
//! assert_eq!(session.fired(), vec![(Site::PoolSpawn, 1)]);
//! drop(session);
//! assert!(ThreadPool::try_new(4).is_ok(), "disarmed: spawns succeed again");
//! ```
//!
//! [`ThreadPool::try_new`]: crate::ThreadPool::try_new

use std::sync::{Mutex, MutexGuard};

/// An instrumented program point where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// A job running on the thread pool panics.
    WorkerJob,
    /// Thread-pool construction fails as if the OS refused the spawn.
    PoolSpawn,
    /// The executor's SpGEMM memory-budget check reports exhaustion.
    BudgetCheck,
}

/// Every injectable site, for harnesses that sweep all of them.
pub const ALL_SITES: [Site; 3] = [Site::WorkerJob, Site::PoolSpawn, Site::BudgetCheck];

impl Site {
    fn index(self) -> usize {
        match self {
            Site::WorkerJob => 0,
            Site::PoolSpawn => 1,
            Site::BudgetCheck => 2,
        }
    }
}

/// Marker prefix on every injected panic payload, so tests (and the
/// executor's degradation report) can tell an injected fault from a real
/// kernel bug.
pub const INJECTED_PANIC: &str = "injected fault:";

/// A deterministic set of faults to inject: for each entry `(site, n)`,
/// the `n`-th time execution passes that site (1-based, counted while the
/// plan is armed) the fault fires.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    triggers: Vec<(Site, u64)>,
}

impl FaultPlan {
    /// An empty plan (no faults fire).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a trigger: fire at the `occurrence`-th pass (1-based) of
    /// `site`. `occurrence == 0` never fires.
    #[must_use]
    pub fn fail_at(mut self, site: Site, occurrence: u64) -> Self {
        self.triggers.push((site, occurrence));
        self
    }

    /// Derives a plan deterministically from a seed: for each
    /// `(site, max_occurrence)` pair, picks an occurrence in
    /// `1..=max_occurrence` by xorshift. The same seed always yields the
    /// same plan, so property tests can sweep seeds and still reproduce
    /// failures exactly.
    #[must_use]
    pub fn seeded(seed: u64, sites: &[(Site, u64)]) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut plan = FaultPlan::new();
        for &(site, max_occurrence) in sites {
            if max_occurrence == 0 {
                continue;
            }
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            plan = plan.fail_at(site, state % max_occurrence + 1);
        }
        plan
    }

    /// Whether the plan has no triggers at all.
    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty()
    }
}

/// The armed plan plus per-site pass counters and the log of fired
/// triggers.
#[derive(Debug)]
struct Armed {
    plan: FaultPlan,
    counts: [u64; ALL_SITES.len()],
    fired: Vec<(Site, u64)>,
}

/// The process-global armed plan. `None` (the default) means every site is
/// pass-through, so release paths that happen to be compiled with the
/// feature behave normally until a test arms a plan.
static ARMED: Mutex<Option<Armed>> = Mutex::new(None);

/// Serializes armed sessions across test threads: the plan is global, so
/// two concurrently armed tests would observe each other's faults.
static SESSION: Mutex<()> = Mutex::new(());

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// An armed fault-injection session. Holds the global test-serialization
/// lock; dropping it disarms the plan (even when the test panics, which is
/// the common case for a fault-injection test).
#[derive(Debug)]
pub struct Session {
    _serial: MutexGuard<'static, ()>,
}

impl Session {
    /// The triggers that have fired so far, in firing order.
    pub fn fired(&self) -> Vec<(Site, u64)> {
        lock(&ARMED)
            .as_ref()
            .map(|a| a.fired.clone())
            .unwrap_or_default()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        *lock(&ARMED) = None;
    }
}

/// Arms `plan` and returns the RAII [`Session`] guarding it. Blocks until
/// any previously armed session has dropped.
pub fn arm(plan: FaultPlan) -> Session {
    let serial = lock(&SESSION);
    *lock(&ARMED) = Some(Armed {
        plan,
        counts: [0; ALL_SITES.len()],
        fired: Vec::new(),
    });
    Session { _serial: serial }
}

/// Records one pass over `site` and reports whether an armed trigger
/// fires at this occurrence. Pass-through (`false`, and no counting) when
/// nothing is armed.
pub fn should_fail(site: Site) -> bool {
    let mut guard = lock(&ARMED);
    let Some(armed) = guard.as_mut() else {
        return false;
    };
    armed.counts[site.index()] += 1;
    let occurrence = armed.counts[site.index()];
    if armed
        .plan
        .triggers
        .iter()
        .any(|&(s, n)| s == site && n == occurrence)
    {
        armed.fired.push((site, occurrence));
        true
    } else {
        false
    }
}

/// Panics with an [`INJECTED_PANIC`]-tagged payload if a trigger fires at
/// this pass of `site`.
pub fn maybe_panic(site: Site) {
    if should_fail(site) {
        panic!("{INJECTED_PANIC} {site:?} panic");
    }
}

/// Returns an [`INJECTED_PANIC`]-tagged `io::Error` if a trigger fires at
/// this pass of `site`.
///
/// # Errors
///
/// Fails exactly when an armed trigger matches this occurrence.
pub fn maybe_fail_io(site: Site) -> std::io::Result<()> {
    if should_fail(site) {
        return Err(std::io::Error::other(format!(
            "{INJECTED_PANIC} {site:?} failure"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_pass_through() {
        assert!(!should_fail(Site::WorkerJob));
        assert!(maybe_fail_io(Site::PoolSpawn).is_ok());
        maybe_panic(Site::BudgetCheck); // must not panic
    }

    #[test]
    fn trigger_fires_at_exact_occurrence_once() {
        let session = arm(FaultPlan::new().fail_at(Site::BudgetCheck, 3));
        assert!(!should_fail(Site::BudgetCheck));
        assert!(!should_fail(Site::BudgetCheck));
        assert!(should_fail(Site::BudgetCheck), "third pass fires");
        assert!(!should_fail(Site::BudgetCheck), "fires exactly once");
        assert!(!should_fail(Site::WorkerJob), "other sites are independent");
        assert_eq!(session.fired(), vec![(Site::BudgetCheck, 3)]);
    }

    #[test]
    fn session_drop_disarms() {
        {
            let _session = arm(FaultPlan::new().fail_at(Site::WorkerJob, 1));
        }
        assert!(!should_fail(Site::WorkerJob), "dropped session disarms");
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        let sites = [(Site::WorkerJob, 5), (Site::BudgetCheck, 2)];
        for seed in 0..64 {
            let a = FaultPlan::seeded(seed, &sites);
            let b = FaultPlan::seeded(seed, &sites);
            assert_eq!(a, b, "same seed, same plan");
            for (&(_, max), &(_, picked)) in sites.iter().zip(&a.triggers) {
                assert!((1..=max).contains(&picked), "occurrence within range");
            }
        }
        assert_ne!(
            FaultPlan::seeded(1, &sites),
            FaultPlan::seeded(2, &sites),
            "different seeds diverge (for these two, at least)"
        );
    }

    #[test]
    fn injected_panic_payload_is_tagged() {
        let _session = arm(FaultPlan::new().fail_at(Site::WorkerJob, 1));
        let caught = std::panic::catch_unwind(|| maybe_panic(Site::WorkerJob));
        let payload = caught.expect_err("must panic");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.starts_with(INJECTED_PANIC));
    }
}
