//! Parallel variants of the native hot paths.
//!
//! Every kernel here is **bit-identical** to its serial counterpart in
//! `smash_kernels::native` (or `SmashMatrix::encode` for the compressor)
//! at every thread count. Two properties make that hold:
//!
//! 1. the matrix is split into *contiguous* line ranges (see
//!    [`partition_by_weight`](crate::partition_by_weight)), balanced by
//!    non-zero count, and each worker writes a disjoint slice of the
//!    output, so no reduction across threads ever reorders floating-point
//!    additions; and
//! 2. within a range, each line is computed by exactly the serial loop
//!    body, in the serial order.
//!
//! The partition depends only on the matrix and the pool's thread count,
//! never on scheduling, so repeated runs are deterministic too.

use crate::partition::{partition_by_weight, partition_rows};
use crate::pool::ThreadPool;
use smash_core::{for_each_line_block, Layout, SmashConfig, SmashMatrix};
use smash_matrix::{Bcsr, Coo, Csc, Csr, Dense, RowRead, Scalar};

/// Parallel `y = A·x` over any [`RowRead`] operand — *the* parallel SpMV
/// driver of the kernel stack, and the single definition behind every
/// format-specific `par_spmv_*` wrapper below.
///
/// The operand's granules (rows, or block rows for BCSR) are split into
/// contiguous ranges balanced by [`RowRead::granule_weight`]; each worker
/// runs [`RowRead::spmv_granules`] — the format's exact serial loop body —
/// over its range into a disjoint slice of `y`. No reduction ever
/// reorders floating-point additions, so the result is bit-identical to
/// the serial driver `smash_matrix::spmv_rows` at every thread count.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()` or `y.len() != a.rows()` (plus any
/// format-specific granule panics, e.g. column-major SMASH).
pub fn par_spmv_rows<T: Scalar, R: RowRead<T> + ?Sized>(
    pool: &ThreadPool,
    a: &R,
    x: &[T],
    y: &mut [T],
) {
    assert_eq!(x.len(), a.cols(), "x length must equal matrix cols");
    assert_eq!(y.len(), a.rows(), "y length must equal matrix rows");
    let ranges = partition_by_weight(a.granules(), pool.threads(), |g| a.granule_weight(g));
    pool.scoped(|s| {
        let mut rest = y;
        let mut consumed = 0usize;
        for range in ranges {
            // Granule range [range.start, range.end) covers matrix rows
            // [granule_row(range.start), granule_row(range.end)) — the
            // last granule of a blocked format may be clipped.
            let row_hi = a.granule_row(range.end);
            let (chunk, tail) = rest.split_at_mut(row_hi - consumed);
            consumed = row_hi;
            rest = tail;
            s.execute(move || a.spmv_granules(range, x, chunk));
        }
        // Rows beyond the last granule cannot exist for non-degenerate
        // decompositions, but guard against an all-empty operand.
        rest.fill(T::ZERO);
    });
}

/// Parallel `C = A·B` (B dense) over any [`RowRead`] operand — the single
/// parallel driver behind every format-specific `par_spmm_dense_*`
/// wrapper, bit-identical to `smash_matrix::spmm_dense_rows` at every
/// thread count. Workers write disjoint row slabs of `C`.
///
/// # Panics
///
/// Panics if `b.rows() != a.cols()`, `c.rows() != a.rows()`, or
/// `c.cols() != b.cols()`.
pub fn par_spmm_dense_rows<T: Scalar, R: RowRead<T> + ?Sized>(
    pool: &ThreadPool,
    a: &R,
    b: &Dense<T>,
    c: &mut Dense<T>,
) {
    assert_eq!(b.rows(), a.cols(), "inner dimensions must agree");
    assert_eq!(c.rows(), a.rows(), "output rows must equal a.rows()");
    assert_eq!(c.cols(), b.cols(), "output cols must equal b.cols()");
    let n = b.cols();
    let ranges = partition_by_weight(a.granules(), pool.threads(), |g| a.granule_weight(g));
    pool.scoped(|s| {
        let mut rest = c.as_mut_slice();
        let mut consumed = 0usize;
        for range in ranges {
            let row_hi = a.granule_row(range.end);
            let (chunk, tail) = rest.split_at_mut((row_hi - consumed) * n);
            consumed = row_hi;
            rest = tail;
            s.execute(move || a.spmm_dense_granules(range, b, chunk));
        }
        rest.fill(T::ZERO);
    });
}

/// Parallel plain CSR SpMV; bit-identical to
/// [`spmv_csr`](../../smash_kernels/native/fn.spmv_csr.html) at any
/// thread count.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()` or `y.len() != a.rows()`.
pub fn par_spmv_csr<T: Scalar>(pool: &ThreadPool, a: &Csr<T>, x: &[T], y: &mut [T]) {
    // One row per granule, weighted by row nnz: the generic driver
    // reproduces the historical `partition_rows(a.row_ptr(), …)` split
    // and runs the same per-row `Csr::row_dot` body.
    par_spmv_rows(pool, a, x, y);
}

/// Parallel BCSR SpMV over block-row ranges; bit-identical to
/// [`spmv_bcsr`](../../smash_kernels/native/fn.spmv_bcsr.html) at any
/// thread count.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()` or `y.len() != a.rows()`.
pub fn par_spmv_bcsr<T: Scalar>(pool: &ThreadPool, a: &Bcsr<T>, x: &[T], y: &mut [T]) {
    // One block row per granule, weighted by its stored block count; each
    // range runs the shared `Bcsr::block_row_spmv` body (the last block
    // row may be clipped to the matrix height).
    par_spmv_rows(pool, a, x, y);
}

/// Parallel software-SMASH SpMV over the compressed form: the matrix's
/// [`LineDirectory`](smash_core::LineDirectory) seeks each worker's row
/// range in O(1) (starting NZA ordinal + stored-bitmap cursor), and each
/// row is scanned with a word-level
/// [`LineCursor`](smash_core::LineCursor) — the logical Bitmap-0 is
/// never expanded, so peak auxiliary memory is O(1) per worker instead
/// of O(dense size). Bit-identical to
/// [`spmv_smash`](../../smash_kernels/native/fn.spmv_smash.html) at any
/// thread count.
///
/// # Panics
///
/// Panics if `x.len() != a.cols()`, `y.len() != a.rows()`, or the matrix
/// is not row-major.
pub fn par_spmv_smash<T: Scalar>(pool: &ThreadPool, a: &SmashMatrix<T>, x: &[T], y: &mut [T]) {
    // One row line per granule, weighted by the per-line block counts the
    // directory already knows — no expansion, no rank scans. Each range
    // runs the shared `LineCursor` + `block_dot` body.
    par_spmv_rows(pool, a, x, y);
}

/// Parallel batched CSR sparse × dense multiply (`C = A * B`, `B` a dense
/// batch of right-hand sides) over nnz-balanced contiguous row ranges;
/// bit-identical to
/// [`spmm_dense_csr`](../../smash_kernels/native/fn.spmm_dense_csr.html)
/// at any thread count — each worker writes a disjoint row slab of `C`
/// and every row runs the shared [`Csr::row_spmm_dense`] body.
///
/// # Panics
///
/// Panics if `b.rows() != a.cols()`, `c.rows() != a.rows()`, or
/// `c.cols() != b.cols()`.
pub fn par_spmm_dense_csr<T: Scalar>(
    pool: &ThreadPool,
    a: &Csr<T>,
    b: &Dense<T>,
    c: &mut Dense<T>,
) {
    // The generic driver over row granules: every row runs the shared
    // `Csr::row_spmm_dense` tiled body into its disjoint slab of `C`.
    par_spmm_dense_rows(pool, a, b, c);
}

/// Parallel batched BCSR sparse × dense multiply over block-row ranges;
/// bit-identical to
/// [`spmm_dense_bcsr`](../../smash_kernels/native/fn.spmm_dense_bcsr.html)
/// at any thread count — every block row runs the shared
/// [`Bcsr::block_row_spmm_dense`] body.
///
/// # Panics
///
/// Panics if `b.rows() != a.cols()`, `c.rows() != a.rows()`, or
/// `c.cols() != b.cols()`.
pub fn par_spmm_dense_bcsr<T: Scalar>(
    pool: &ThreadPool,
    a: &Bcsr<T>,
    b: &Dense<T>,
    c: &mut Dense<T>,
) {
    // The generic driver over block-row granules: every block row runs
    // the shared `Bcsr::block_row_spmm_dense` body.
    par_spmm_dense_rows(pool, a, b, c);
}

/// Parallel batched SMASH sparse × dense multiply over the compressed
/// form: workers seek their nnz-balanced row ranges through the matrix's
/// [`LineDirectory`](smash_core::LineDirectory) and scan each row with a
/// word-level [`LineCursor`](smash_core::LineCursor) — the logical
/// Bitmap-0 is never expanded. Bit-identical to
/// [`spmm_dense_smash`](../../smash_kernels/native/fn.spmm_dense_smash.html)
/// at any thread count — every block runs the shared `block_axpy_dense`
/// body in the serial block order.
///
/// # Panics
///
/// Panics if `b.rows() != a.cols()`, `c.rows() != a.rows()`,
/// `c.cols() != b.cols()`, or the matrix is not row-major.
pub fn par_spmm_dense_smash<T: Scalar>(
    pool: &ThreadPool,
    a: &SmashMatrix<T>,
    b: &Dense<T>,
    c: &mut Dense<T>,
) {
    // The generic driver over row-line granules: every row runs the
    // shared `LineCursor` + `block_axpy_dense` body.
    par_spmm_dense_rows(pool, a, b, c);
}

/// Inner-product SpMM over one row range, driving the same
/// [`Csr::spmm_inner_row`] routine as the serial `spmm_inner`.
fn spmm_rows<T: Scalar>(
    a: &Csr<T>,
    b: &Csc<T>,
    rows: std::ops::Range<usize>,
) -> Vec<(u32, u32, T)> {
    let mut out = Vec::new();
    for i in rows {
        a.spmm_inner_row(i, b, |j, acc| out.push((i as u32, j as u32, acc)));
    }
    out
}

/// Parallel inner-product SpMM (`C = A * B`, `B` in CSC form) over row
/// ranges of `A`; bit-identical to
/// [`spmm_csr`](../../smash_kernels/native/fn.spmm_csr.html) at any
/// thread count: per-range triplet lists are concatenated in row order, so
/// the resulting COO matches the serial construction entry for entry.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn par_spmm_csr<T: Scalar>(pool: &ThreadPool, a: &Csr<T>, b: &Csc<T>) -> Coo<T> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let ranges = partition_rows(a.row_ptr(), pool.threads());
    let mut chunks: Vec<Vec<(u32, u32, T)>> = vec![Vec::new(); ranges.len()];
    pool.scoped(|s| {
        for (range, slot) in ranges.iter().cloned().zip(chunks.iter_mut()) {
            s.execute(move || *slot = spmm_rows(a, b, range));
        }
    });
    let nnz = chunks.iter().map(Vec::len).sum();
    let mut c = Coo::with_capacity(a.rows(), b.cols(), nnz);
    for (i, j, v) in chunks.into_iter().flatten() {
        c.push(i as usize, j as usize, v);
    }
    c.compress();
    c
}

/// Parallel CSR → SMASH compression; the produced matrix is `==` to
/// `SmashMatrix::encode(a, config)` (same bitmap hierarchy, same NZA
/// block order and padding) at any thread count.
///
/// Workers discover the occupied blocks and materialize the NZA values
/// for disjoint line ranges; the main thread splices the per-range
/// results in line order and builds the upper bitmap levels once.
pub fn par_csr_to_smash<T: Scalar>(
    pool: &ThreadPool,
    a: &Csr<T>,
    config: SmashConfig,
) -> SmashMatrix<T> {
    match config.layout() {
        Layout::RowMajor => par_encode_lines(pool, a.rows(), a.cols(), config, |l| a.row(l)),
        Layout::ColMajor => {
            // Column-major encoding walks the CSC transpose-view, exactly
            // like the serial encoder.
            let csc = a.to_csc();
            par_encode_lines(pool, a.rows(), a.cols(), config, |l| csc.col(l))
        }
    }
}

/// Shared parallel encoder over an abstract "line" accessor (CSR rows or
/// CSC columns), mirroring `SmashMatrix::encode_lines`.
fn par_encode_lines<'m, T: Scalar, F>(
    pool: &ThreadPool,
    rows: usize,
    cols: usize,
    config: SmashConfig,
    line_entries: F,
) -> SmashMatrix<T>
where
    F: Fn(usize) -> (&'m [u32], &'m [T]) + Sync,
{
    let b0 = config.block_size();
    let (lines, line_len) = match config.layout() {
        Layout::RowMajor => (rows, cols),
        Layout::ColMajor => (cols, rows),
    };
    let bpl = line_len.div_ceil(b0);
    let ranges = partition_by_weight(lines, pool.threads(), |l| line_entries(l).0.len() as u64);
    // Per range: the logical Bitmap-0 indices of occupied blocks plus the
    // flattened (zero-padded) block values, both in bit order.
    let mut parts: Vec<(Vec<usize>, Vec<T>)> = vec![Default::default(); ranges.len()];
    pool.scoped(|s| {
        for (range, slot) in ranges.iter().cloned().zip(parts.iter_mut()) {
            let line_entries = &line_entries;
            s.execute(move || {
                let mut bits = Vec::new();
                let mut vals = Vec::new();
                let mut block = vec![T::ZERO; b0];
                for line in range {
                    let (offsets, values) = line_entries(line);
                    let base = line * bpl;
                    // The same per-line routine the serial encoder uses —
                    // sharing it keeps the two bit-identical.
                    for_each_line_block(offsets, values, &mut block, |blk, block_vals| {
                        bits.push(base + blk);
                        vals.extend_from_slice(block_vals);
                    });
                }
                *slot = (bits, vals);
            });
        }
    });
    // Bit order across the parts is line order, so one shared assembly
    // routine (also used by the SpGEMM engine's direct-to-SMASH emission)
    // builds the bitmap hierarchy and NZA.
    SmashMatrix::from_bit_blocks(rows, cols, config, &parts)
        .expect("parallel encoder preserves all invariants")
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_matrix::generators;

    fn test_vector(n: usize) -> Vec<f64> {
        (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect()
    }

    fn pools() -> Vec<ThreadPool> {
        [1, 2, 3, 8].map(ThreadPool::new).into_iter().collect()
    }

    #[test]
    fn par_spmv_csr_is_bit_identical_to_serial() {
        let a = generators::power_law(96, 80, 700, 1.3, 11);
        let x = test_vector(80);
        let mut want = vec![0.0; 96];
        // Serial reference: the same per-row loop on one thread.
        par_spmv_csr(&ThreadPool::new(1), &a, &x, &mut want);
        for pool in pools() {
            let mut y = vec![1.0; 96];
            par_spmv_csr(&pool, &a, &x, &mut y);
            assert_eq!(y, want, "threads = {}", pool.threads());
        }
    }

    #[test]
    fn par_spmv_bcsr_matches_one_thread_exactly() {
        let a = generators::clustered(70, 66, 500, 5, 3);
        let bcsr = Bcsr::from_csr(&a, 2, 2).unwrap();
        let x = test_vector(66);
        let mut want = vec![0.0; 70];
        par_spmv_bcsr(&ThreadPool::new(1), &bcsr, &x, &mut want);
        for pool in pools() {
            let mut y = vec![9.0; 70];
            par_spmv_bcsr(&pool, &bcsr, &x, &mut y);
            assert_eq!(y, want, "threads = {}", pool.threads());
        }
    }

    #[test]
    fn par_spmv_smash_matches_one_thread_exactly() {
        let a = generators::banded(90, 90, 5, 600, 7);
        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4, 16]).unwrap());
        let x = test_vector(90);
        let mut want = vec![0.0; 90];
        par_spmv_smash(&ThreadPool::new(1), &sm, &x, &mut want);
        for pool in pools() {
            let mut y = vec![-3.0; 90];
            par_spmv_smash(&pool, &sm, &x, &mut y);
            assert_eq!(y, want, "threads = {}", pool.threads());
        }
    }

    #[test]
    fn par_spmm_csr_matches_serial_spmm_inner() {
        let a = generators::uniform(40, 50, 400, 7);
        let b = generators::uniform(50, 30, 350, 8);
        let bc = b.to_csc();
        let want = a.spmm_inner(&bc).unwrap();
        for pool in pools() {
            let got = par_spmm_csr(&pool, &a, &bc);
            assert_eq!(
                got.entries(),
                want.entries(),
                "threads = {}",
                pool.threads()
            );
        }
    }

    #[test]
    fn par_compression_equals_serial_encode() {
        let a = generators::clustered(64, 72, 600, 4, 21);
        for ratios in [&[2u32][..], &[4, 4], &[2, 4, 16]] {
            let cfg = SmashConfig::row_major(ratios).unwrap();
            let want = SmashMatrix::encode(&a, cfg.clone());
            for pool in pools() {
                let got = par_csr_to_smash(&pool, &a, cfg.clone());
                assert_eq!(got, want, "ratios {ratios:?}, threads {}", pool.threads());
            }
        }
    }

    #[test]
    fn par_compression_handles_col_major() {
        let a = generators::uniform(37, 53, 400, 9);
        let cfg = SmashConfig::col_major(&[2, 4]).unwrap();
        let want = SmashMatrix::encode(&a, cfg.clone());
        for pool in pools() {
            let got = par_csr_to_smash(&pool, &a, cfg.clone());
            assert_eq!(got, want, "threads {}", pool.threads());
        }
    }

    fn test_batch(rows: usize, cols: usize) -> Dense<f64> {
        generators::dense_batch(rows, cols, 5)
    }

    #[test]
    fn par_spmm_dense_kernels_match_one_thread_exactly() {
        let a = generators::power_law(96, 80, 700, 1.3, 11);
        let bcsr = Bcsr::from_csr(&a, 2, 2).unwrap();
        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4, 16]).unwrap());
        for n in [1usize, 4, 8, 13] {
            let b = test_batch(80, n);
            let mut want = Dense::zeros(96, n);
            let mut got = Dense::zeros(96, n);

            par_spmm_dense_csr(&ThreadPool::new(1), &a, &b, &mut want);
            for pool in pools() {
                got.as_mut_slice().fill(f64::NAN);
                par_spmm_dense_csr(&pool, &a, &b, &mut got);
                assert_eq!(got, want, "csr, n = {n}, threads = {}", pool.threads());
            }

            par_spmm_dense_bcsr(&ThreadPool::new(1), &bcsr, &b, &mut want);
            for pool in pools() {
                got.as_mut_slice().fill(f64::NAN);
                par_spmm_dense_bcsr(&pool, &bcsr, &b, &mut got);
                assert_eq!(got, want, "bcsr, n = {n}, threads = {}", pool.threads());
            }

            par_spmm_dense_smash(&ThreadPool::new(1), &sm, &b, &mut want);
            for pool in pools() {
                got.as_mut_slice().fill(f64::NAN);
                par_spmm_dense_smash(&pool, &sm, &b, &mut got);
                assert_eq!(got, want, "smash, n = {n}, threads = {}", pool.threads());
            }
        }
    }

    #[test]
    fn par_spmm_dense_columns_match_par_spmv() {
        let a = generators::clustered(70, 66, 500, 5, 3);
        let b = test_batch(66, 8);
        let pool = ThreadPool::new(4);
        let mut c = Dense::zeros(70, 8);
        par_spmm_dense_csr(&pool, &a, &b, &mut c);
        for j in 0..8 {
            let mut y = vec![0.0; 70];
            par_spmv_csr(&pool, &a, &b.col(j), &mut y);
            assert_eq!(c.col(j), y, "column {j}");
        }
    }

    #[test]
    fn empty_matrix_is_handled_by_all_kernels() {
        let a = Csr::<f64>::from_coo(&Coo::new(16, 16));
        let pool = ThreadPool::new(4);
        let mut y = vec![5.0; 16];
        par_spmv_csr(&pool, &a, &test_vector(16), &mut y);
        assert!(y.iter().all(|&v| v == 0.0));
        let sm = par_csr_to_smash(&pool, &a, SmashConfig::row_major(&[2, 4]).unwrap());
        assert_eq!(
            sm,
            SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4]).unwrap())
        );
        let c = par_spmm_csr(&pool, &a, &a.to_csc());
        assert_eq!(c.nnz(), 0);
    }
}
