//! Multi-core execution layer for the SMASH reproduction: a small scoped
//! thread pool plus parallel variants of the native hot paths.
//!
//! The paper's premise is that removing the indexing bottleneck lets
//! sparse kernels run at memory speed — which on a real host also means
//! using every core. This crate supplies:
//!
//! * [`ThreadPool`] — a from-scratch scoped pool (std threads + channels)
//!   with clean shutdown, panic propagation and a `SMASH_THREADS`
//!   environment override ([`default_threads`]);
//! * [`partition_by_weight`] / [`partition_rows`] — deterministic,
//!   nnz-balanced contiguous range partitioning;
//! * [`par_spmv_csr`], [`par_spmv_bcsr`], [`par_spmv_smash`],
//!   [`par_spmm_csr`], [`par_csr_to_smash`] — parallel kernels that are
//!   **bit-identical** to their serial counterparts at every thread
//!   count, because workers own disjoint contiguous output ranges and
//!   each line is computed by the serial loop body in serial order.
//!
//! # Example
//!
//! ```
//! use smash_parallel::{par_spmv_csr, ThreadPool};
//! use smash_matrix::generators;
//!
//! let a = generators::uniform(128, 128, 900, 42);
//! let x = vec![1.0; 128];
//! let pool = ThreadPool::new(4);
//! let mut y_par = vec![0.0; 128];
//! par_spmv_csr(&pool, &a, &x, &mut y_par);
//!
//! let serial = ThreadPool::new(1);
//! let mut y_ser = vec![0.0; 128];
//! par_spmv_csr(&serial, &a, &x, &mut y_ser);
//! assert_eq!(y_par, y_ser); // bit-identical, not just close
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

#[cfg(feature = "fault-injection")]
pub mod faultinject;
mod kernels;
mod partition;
mod pool;

pub use kernels::{
    par_csr_to_smash, par_spmm_csr, par_spmm_dense_bcsr, par_spmm_dense_csr, par_spmm_dense_rows,
    par_spmm_dense_smash, par_spmv_bcsr, par_spmv_csr, par_spmv_rows, par_spmv_smash,
};
pub use partition::{partition_by_weight, partition_rows};
pub use pool::{
    default_threads, threads_from_env, Scope, ThreadPool, ThreadsEnvError, THREADS_ENV,
};
