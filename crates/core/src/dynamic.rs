//! Dynamic matrices: an immutable base tier plus a mutable delta overlay,
//! merged on access and compacted explicitly.
//!
//! Every format in this workspace is immutable — good for kernels, bad
//! for live graphs where edges arrive continuously. Following the tiered
//! shape of the SMASH hierarchy itself (and SpArch's partial-matrix
//! merging), [`DynamicMatrix`] presents one logical matrix as two tiers:
//!
//! * the **base**: a [`Csr`] or row-major [`SmashMatrix`], untouched;
//! * the **overlay**: a [`DeltaOverlay`] absorbing point mutations —
//!   `set` (insert/update), `add` (accumulate, SpAdd semantics) and
//!   `delete`.
//!
//! Kernels run through the [`RowRead`] operand layer: rows without
//! overlay entries execute the base format's exact serial body, touched
//! rows are merged on the fly with the same sorted two-cursor merge (and
//! the same cancellation rule — a merged value that is exact `±0.0` is
//! dropped, never stored) as the native `spadd` kernel. The result is
//! **bit-identical** to rebuilding the merged matrix from scratch and
//! running the base format's kernel over it, at every thread count.
//!
//! [`DynamicMatrix::compact`] absorbs the overlay into a fresh base via
//! the same per-line encoder routine as a from-scratch build, so a
//! compacted matrix is `==` to one encoded from the merged triplets.
//!
//! See `docs/DYNAMIC.md` for the tier model and the full contracts.

use crate::{block_axpy_dense, block_dot, for_each_line_block, Layout, SmashConfig, SmashMatrix};
use smash_matrix::{for_each_rhs_tile, Csr, CsrBuilder, Dense, RowRead, Scalar};
use std::collections::BTreeMap;
use std::ops::Range;

/// One overlay mutation for a single matrix cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Delta<T> {
    /// Replace the cell with this value (insert or update).
    Set(T),
    /// Accumulate onto the cell (SpAdd semantics: merged value is
    /// `base + delta`).
    Add(T),
    /// Remove the cell.
    Delete,
}

/// A sorted overlay of point mutations, independent of any base matrix.
///
/// Entries are keyed `(row, col)` and kept sorted (BTree), so merging a
/// row against a sorted base row is a linear two-cursor sweep. Repeated
/// mutations of the same cell **fold**:
///
/// | existing ↓ \ incoming → | `set(v)` | `add(d)`       | `delete` |
/// |-------------------------|----------|----------------|----------|
/// | none                    | Set(v)   | Add(d)         | Delete   |
/// | Set(u)                  | Set(v)   | Set(u + d)     | Delete   |
/// | Add(u)                  | Set(v)   | Add(u + d)     | Delete   |
/// | Delete                  | Set(v)   | Set(d)         | Delete   |
///
/// (`add` after `delete` becomes `Set(d)`: the base cell was deleted, so
/// there is nothing to accumulate onto.)
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaOverlay<T> {
    rows: BTreeMap<u32, BTreeMap<u32, Delta<T>>>,
    len: usize,
}

impl<T: Scalar> DeltaOverlay<T> {
    /// An empty overlay.
    pub fn new() -> Self {
        DeltaOverlay {
            rows: BTreeMap::new(),
            len: 0,
        }
    }

    /// Number of overlay entries (cells with a pending mutation).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the overlay holds no mutations.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct rows with at least one pending mutation.
    pub fn touched_rows(&self) -> usize {
        self.rows.len()
    }

    /// Pending mutations of row `r`, sorted by column, if any.
    pub fn row(&self, r: usize) -> Option<&BTreeMap<u32, Delta<T>>> {
        self.rows.get(&(r as u32))
    }

    /// Number of pending mutations in row `r`.
    pub fn row_len(&self, r: usize) -> usize {
        self.row(r).map_or(0, BTreeMap::len)
    }

    /// Iterates all pending mutations in `(row, col)` order.
    pub fn deltas(&self) -> impl Iterator<Item = (usize, usize, &Delta<T>)> + '_ {
        self.rows
            .iter()
            .flat_map(|(&r, row)| row.iter().map(move |(&c, d)| (r as usize, c as usize, d)))
    }

    fn entry(&mut self, r: usize) -> &mut BTreeMap<u32, Delta<T>> {
        self.rows.entry(r as u32).or_default()
    }

    /// Records `set(r, c, v)`: the merged cell becomes exactly `v`.
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        let row = self.entry(r);
        if row.insert(c as u32, Delta::Set(v)).is_none() {
            self.len += 1;
        }
    }

    /// Records `delete(r, c)`: the merged cell disappears.
    pub fn delete(&mut self, r: usize, c: usize) {
        let row = self.entry(r);
        if row.insert(c as u32, Delta::Delete).is_none() {
            self.len += 1;
        }
    }

    /// Records `add(r, c, d)`: the merged cell becomes `base + d` (or the
    /// folded equivalent per the table in the type docs).
    pub fn add(&mut self, r: usize, c: usize, d: T) {
        let row = self.entry(r);
        let folded = match row.get(&(c as u32)) {
            None => Delta::Add(d),
            Some(Delta::Set(u)) => Delta::Set(*u + d),
            Some(Delta::Add(u)) => Delta::Add(*u + d),
            Some(Delta::Delete) => Delta::Set(d),
        };
        if row.insert(c as u32, folded).is_none() {
            self.len += 1;
        }
    }

    /// Drops every pending mutation.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.len = 0;
    }
}

/// Merges one sorted base row with one overlay row into `(out_cols,
/// out_vals)` — the same sorted two-cursor merge as the native `spadd`
/// kernel, with the same cancellation rule: any overlay-affected merged
/// value that is exact `±0.0` is dropped (so `set(r, c, 0.0)` behaves
/// like `delete`). Base-only entries pass through verbatim.
pub fn merge_row<T: Scalar>(
    base_cols: &[u32],
    base_vals: &[T],
    delta: &BTreeMap<u32, Delta<T>>,
    out_cols: &mut Vec<u32>,
    out_vals: &mut Vec<T>,
) {
    out_cols.clear();
    out_vals.clear();
    let mut push = |c: u32, v: T| {
        out_cols.push(c);
        out_vals.push(v);
    };
    let mut p = 0usize;
    let mut dit = delta.iter().peekable();
    loop {
        match (base_cols.get(p), dit.peek()) {
            (Some(&bc), Some(&(&dc, d))) if dc == bc => {
                match d {
                    Delta::Set(v) => {
                        if !v.is_zero() {
                            push(bc, *v);
                        }
                    }
                    Delta::Add(dv) => {
                        let v = base_vals[p] + *dv;
                        if !v.is_zero() {
                            push(bc, v);
                        }
                    }
                    Delta::Delete => {}
                }
                p += 1;
                dit.next();
            }
            (Some(&bc), Some(&(&dc, _))) if bc < dc => {
                push(bc, base_vals[p]);
                p += 1;
            }
            (_, Some(&(&dc, d))) => {
                match d {
                    Delta::Set(v) | Delta::Add(v) => {
                        if !v.is_zero() {
                            push(dc, *v);
                        }
                    }
                    Delta::Delete => {}
                }
                dit.next();
            }
            (Some(&bc), None) => {
                push(bc, base_vals[p]);
                p += 1;
            }
            (None, None) => break,
        }
    }
}

/// The immutable tier under a [`DynamicMatrix`]: plain CSR or the
/// row-major SMASH compressed form.
#[derive(Debug, Clone, PartialEq)]
pub enum DynamicBase<T> {
    /// Compressed sparse row.
    Csr(Csr<T>),
    /// SMASH-compressed, row-major.
    Smash(SmashMatrix<T>),
}

/// A logically mutable sparse matrix: immutable base tier + delta
/// overlay, merged on access.
///
/// Kernels consume it through [`RowRead`], so the executor's
/// `spmv`/`spmm_dense` (serial or parallel) run over it unchanged and
/// produce results bit-identical to rebuilding the merged matrix from
/// scratch in the base's format. See the module docs and
/// `docs/DYNAMIC.md`.
///
/// ```
/// use smash_core::DynamicMatrix;
/// use smash_matrix::{generators, spmv_rows};
///
/// let a = generators::uniform(32, 32, 120, 3);
/// let mut dm = DynamicMatrix::from_csr(a);
/// dm.set(0, 5, 2.5); // insert
/// dm.add(1, 7, 1.0); // accumulate
/// dm.delete(2, 2); // remove (no-op if absent)
///
/// let x = vec![1.0f64; 32];
/// let mut y = vec![0.0f64; 32];
/// spmv_rows(&dm, &x, &mut y);
///
/// // Bit-identical to a from-scratch rebuild of the merged matrix:
/// let rebuilt = dm.merged_csr();
/// let mut want = vec![0.0f64; 32];
/// spmv_rows(&rebuilt, &x, &mut want);
/// assert_eq!(y, want);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicMatrix<T> {
    base: DynamicBase<T>,
    overlay: DeltaOverlay<T>,
}

impl<T: Scalar> DynamicMatrix<T> {
    /// Wraps a CSR base with an empty overlay.
    pub fn from_csr(base: Csr<T>) -> Self {
        DynamicMatrix {
            base: DynamicBase::Csr(base),
            overlay: DeltaOverlay::new(),
        }
    }

    /// Wraps a row-major SMASH base with an empty overlay.
    ///
    /// # Panics
    ///
    /// Panics if the base is column-major — the kernel stack walks row
    /// lines.
    pub fn from_smash(base: SmashMatrix<T>) -> Self {
        assert_eq!(
            base.config().layout(),
            Layout::RowMajor,
            "dynamic SMASH base must be row-major"
        );
        DynamicMatrix {
            base: DynamicBase::Smash(base),
            overlay: DeltaOverlay::new(),
        }
    }

    /// The immutable base tier.
    pub fn base(&self) -> &DynamicBase<T> {
        &self.base
    }

    /// The pending-mutation overlay tier.
    pub fn overlay(&self) -> &DeltaOverlay<T> {
        &self.overlay
    }

    /// Logical rows.
    pub fn rows(&self) -> usize {
        match &self.base {
            DynamicBase::Csr(a) => a.rows(),
            DynamicBase::Smash(a) => a.rows(),
        }
    }

    /// Logical columns.
    pub fn cols(&self) -> usize {
        match &self.base {
            DynamicBase::Csr(a) => a.cols(),
            DynamicBase::Smash(a) => a.cols(),
        }
    }

    fn check_bounds(&self, r: usize, c: usize) {
        assert!(
            r < self.rows() && c < self.cols(),
            "({r}, {c}) out of bounds for {}x{}",
            self.rows(),
            self.cols()
        );
    }

    /// Sets cell `(r, c)` to `v` (insert or update).
    ///
    /// # Panics
    ///
    /// Panics if `(r, c)` is out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        self.check_bounds(r, c);
        self.overlay.set(r, c, v);
    }

    /// Accumulates `d` onto cell `(r, c)` (SpAdd semantics).
    ///
    /// # Panics
    ///
    /// Panics if `(r, c)` is out of bounds.
    pub fn add(&mut self, r: usize, c: usize, d: T) {
        self.check_bounds(r, c);
        self.overlay.add(r, c, d);
    }

    /// Deletes cell `(r, c)` (a no-op on the merged view if absent).
    ///
    /// # Panics
    ///
    /// Panics if `(r, c)` is out of bounds.
    pub fn delete(&mut self, r: usize, c: usize) {
        self.check_bounds(r, c);
        self.overlay.delete(r, c);
    }

    /// Copies the base's logical row `i` (decode semantics for a SMASH
    /// base: explicit padding zeros are skipped).
    fn base_row_into(&self, i: usize, cols: &mut Vec<u32>, vals: &mut Vec<T>) {
        match &self.base {
            DynamicBase::Csr(a) => RowRead::row_into(a, i, cols, vals),
            DynamicBase::Smash(a) => RowRead::row_into(a, i, cols, vals),
        }
    }

    /// Exact logical non-zero count of the merged view, in O(base rows +
    /// touched-row entries).
    pub fn nnz(&self) -> usize {
        let base_nnz = match &self.base {
            DynamicBase::Csr(a) => a.nnz(),
            DynamicBase::Smash(a) => a.nnz(),
        };
        let (mut bc, mut bv) = (Vec::new(), Vec::new());
        let (mut mc, mut mv) = (Vec::new(), Vec::new());
        let mut nnz = base_nnz;
        for (&r, delta) in &self.overlay.rows {
            self.base_row_into(r as usize, &mut bc, &mut bv);
            merge_row(&bc, &bv, delta, &mut mc, &mut mv);
            nnz = nnz - bc.len() + mc.len();
        }
        nnz
    }

    /// Materializes the merged view as a plain CSR — exactly the matrix a
    /// from-scratch rebuild would produce from the merged triplets.
    pub fn merged_csr(&self) -> Csr<T> {
        let (mut bc, mut bv) = (Vec::new(), Vec::new());
        let (mut mc, mut mv) = (Vec::new(), Vec::new());
        let mut b = CsrBuilder::with_capacity(self.cols(), self.rows(), self.nnz());
        for i in 0..self.rows() {
            self.base_row_into(i, &mut bc, &mut bv);
            match self.overlay.row(i) {
                None => b.push_row(&bc, &bv),
                Some(delta) => {
                    merge_row(&bc, &bv, delta, &mut mc, &mut mv);
                    b.push_row(&mc, &mv);
                }
            }
        }
        b.finish()
    }

    /// Absorbs the overlay into a fresh base tier (serial encoder) and
    /// clears it. The new base is `==` to a from-scratch build of the
    /// merged matrix: `Csr` bases become [`merged_csr`](Self::merged_csr),
    /// SMASH bases are re-encoded with [`SmashMatrix::encode`] under the
    /// same [`SmashConfig`].
    pub fn compact(&mut self) {
        self.compact_with(SmashMatrix::encode);
    }

    /// [`compact`](Self::compact) with an injected CSR → SMASH encoder,
    /// so callers holding a thread pool can compact through the parallel
    /// encoder (`smash_parallel::par_csr_to_smash`), which is `==` to the
    /// serial one at every thread count. The closure is only invoked for
    /// a SMASH base.
    pub fn compact_with(&mut self, encode: impl FnOnce(&Csr<T>, SmashConfig) -> SmashMatrix<T>) {
        if self.overlay.is_empty() {
            return;
        }
        let merged = self.merged_csr();
        self.base = match &self.base {
            DynamicBase::Csr(_) => DynamicBase::Csr(merged),
            DynamicBase::Smash(a) => DynamicBase::Smash(encode(&merged, a.config().clone())),
        };
        self.overlay.clear();
    }
}

impl<T: Scalar> RowRead<T> for DynamicMatrix<T> {
    fn rows(&self) -> usize {
        DynamicMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        DynamicMatrix::cols(self)
    }

    fn stored_work(&self) -> usize {
        let base = match &self.base {
            DynamicBase::Csr(a) => a.nnz(),
            DynamicBase::Smash(a) => a.nza().len(),
        };
        base + self.overlay.len()
    }

    fn granules(&self) -> usize {
        self.rows()
    }

    fn granule_weight(&self, g: usize) -> u64 {
        let base = match &self.base {
            DynamicBase::Csr(a) => RowRead::granule_weight(a, g),
            DynamicBase::Smash(a) => RowRead::granule_weight(a, g),
        };
        base + self.overlay.row_len(g) as u64
    }

    fn granule_row(&self, g: usize) -> usize {
        g
    }

    fn row_into(&self, i: usize, cols: &mut Vec<u32>, vals: &mut Vec<T>) {
        match self.overlay.row(i) {
            None => self.base_row_into(i, cols, vals),
            Some(delta) => {
                let (mut bc, mut bv) = (Vec::new(), Vec::new());
                self.base_row_into(i, &mut bc, &mut bv);
                merge_row(&bc, &bv, delta, cols, vals);
            }
        }
    }

    fn spmv_granules(&self, g: Range<usize>, x: &[T], y: &mut [T]) {
        let (mut bc, mut bv) = (Vec::new(), Vec::new());
        let (mut mc, mut mv) = (Vec::new(), Vec::new());
        match &self.base {
            DynamicBase::Csr(a) => {
                let lo = g.start;
                for i in g {
                    y[i - lo] = match self.overlay.row(i) {
                        // Untouched rows run the exact CSR serial body.
                        None => a.row_dot(i, x),
                        Some(delta) => {
                            let (rc, rv) = a.row(i);
                            merge_row(rc, rv, delta, &mut mc, &mut mv);
                            // The rebuilt matrix's row_dot over the merged
                            // entries — the same SIMD body, bit for bit.
                            T::simd_dot_indexed(&mc, &mv, x)
                        }
                    };
                }
            }
            DynamicBase::Smash(a) => {
                let b0 = a.config().block_size();
                let cols = a.cols();
                let mut scratch = vec![T::ZERO; b0];
                y.fill(T::ZERO);
                for row in g.clone() {
                    match self.overlay.row(row) {
                        // Untouched rows run the exact SMASH cursor body.
                        None => {
                            a.spmv_granules(row..row + 1, x, &mut y[row - g.start..=row - g.start])
                        }
                        Some(delta) => {
                            RowRead::row_into(a, row, &mut bc, &mut bv);
                            merge_row(&bc, &bv, delta, &mut mc, &mut mv);
                            // Re-blocked merged row: the same blocks (and
                            // the same per-block dot) a re-encoded matrix
                            // would store for this row.
                            let yi = &mut y[row - g.start];
                            for_each_line_block(&mc, &mv, &mut scratch, |blk, block| {
                                let col = blk * b0;
                                let n = b0.min(cols - col);
                                *yi += block_dot(block, x, col, n);
                            });
                        }
                    }
                }
            }
        }
    }

    fn spmm_dense_granules(&self, g: Range<usize>, b: &Dense<T>, c: &mut [T]) {
        let n = b.cols();
        let (mut bc, mut bv) = (Vec::new(), Vec::new());
        let (mut mc, mut mv) = (Vec::new(), Vec::new());
        match &self.base {
            DynamicBase::Csr(a) => {
                let lo = g.start;
                for i in g {
                    let out = &mut c[(i - lo) * n..(i - lo + 1) * n];
                    match self.overlay.row(i) {
                        None => a.row_spmm_dense(i, b, out),
                        Some(delta) => {
                            let (rc, rv) = a.row(i);
                            merge_row(rc, rv, delta, &mut mc, &mut mv);
                            // The rebuilt matrix's tiled row body over the
                            // merged entries.
                            for_each_rhs_tile(n, |j0, w| {
                                T::simd_row_tile(&mc, &mv, b.as_slice(), n, j0, w, out);
                            });
                        }
                    }
                }
            }
            DynamicBase::Smash(a) => {
                let b0 = a.config().block_size();
                let cols = a.cols();
                let mut scratch = vec![T::ZERO; b0];
                c.fill(T::ZERO);
                for row in g.clone() {
                    let out = &mut c[(row - g.start) * n..(row - g.start + 1) * n];
                    match self.overlay.row(row) {
                        None => a.spmm_dense_granules(row..row + 1, b, out),
                        Some(delta) => {
                            RowRead::row_into(a, row, &mut bc, &mut bv);
                            merge_row(&bc, &bv, delta, &mut mc, &mut mv);
                            for_each_line_block(&mc, &mv, &mut scratch, |blk, block| {
                                let col = blk * b0;
                                let nb = b0.min(cols - col);
                                block_axpy_dense(block, b, col, nb, out);
                            });
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_matrix::{generators, spmm_dense_rows, spmv_rows};

    fn base() -> Csr<f64> {
        generators::uniform(48, 40, 300, 17)
    }

    fn x(n: usize) -> Vec<f64> {
        (0..n).map(|i| 0.5 + (i % 5) as f64 * 0.75).collect()
    }

    #[test]
    fn untouched_dynamic_matches_base_exactly() {
        let a = base();
        let dm = DynamicMatrix::from_csr(a.clone());
        let x = x(40);
        let (mut y, mut want) = (vec![0.0; 48], vec![0.0; 48]);
        spmv_rows(&dm, &x, &mut y);
        spmv_rows(&a, &x, &mut want);
        assert_eq!(y, want);
        assert_eq!(dm.merged_csr(), a);
        assert_eq!(dm.nnz(), a.nnz());
    }

    #[test]
    fn overlay_fold_table() {
        let mut ov = DeltaOverlay::<f64>::new();
        ov.set(0, 0, 2.0);
        ov.add(0, 0, 1.0); // Set(2) + add(1) -> Set(3)
        assert_eq!(ov.row(0).unwrap()[&0], Delta::Set(3.0));
        ov.delete(0, 0);
        assert_eq!(ov.row(0).unwrap()[&0], Delta::Delete);
        ov.add(0, 0, 5.0); // add after delete -> Set(5)
        assert_eq!(ov.row(0).unwrap()[&0], Delta::Set(5.0));
        ov.add(0, 1, 1.0);
        ov.add(0, 1, 2.0); // Add(1) + add(2) -> Add(3)
        assert_eq!(ov.row(0).unwrap()[&1], Delta::Add(3.0));
        assert_eq!(ov.len(), 2);
    }

    #[test]
    fn merge_drops_exact_zeros_but_keeps_base_entries() {
        let mut dm = DynamicMatrix::from_csr(base());
        let a = base();
        let (rc, rv) = a.row(3);
        assert!(!rc.is_empty(), "seed row must have entries");
        let (c0, v0) = (rc[0] as usize, rv[0]);
        dm.add(3, c0, -v0); // exact cancellation
        dm.set(3, (c0 + 1) % 40, 0.0); // set-to-zero == delete
        let merged = dm.merged_csr();
        let (mc, _) = merged.row(3);
        assert!(!mc.contains(&(c0 as u32)), "cancelled entry must vanish");
        assert!(merged.values().iter().all(|v| *v != 0.0), "no stored zeros");
    }

    #[test]
    fn dynamic_smash_matches_rebuilt_smash_exactly() {
        let cfg = SmashConfig::row_major(&[2, 4]).unwrap();
        let sm = SmashMatrix::encode(&base(), cfg.clone());
        let mut dm = DynamicMatrix::from_smash(sm);
        dm.set(0, 11, 4.5);
        dm.delete(5, 3);
        dm.add(17, 39, -2.0);
        dm.set(47, 0, 1.0);
        let rebuilt = SmashMatrix::encode(&dm.merged_csr(), cfg);
        let xv = x(40);
        let (mut y, mut want) = (vec![0.0; 48], vec![0.0; 48]);
        spmv_rows(&dm, &xv, &mut y);
        spmv_rows(&rebuilt, &xv, &mut want);
        assert_eq!(y, want);

        let b = generators::dense_batch(40, 6, 9);
        let (mut c, mut cw) = (Dense::zeros(48, 6), Dense::zeros(48, 6));
        spmm_dense_rows(&dm, &b, &mut c);
        spmm_dense_rows(&rebuilt, &b, &mut cw);
        assert_eq!(c, cw);
    }

    #[test]
    fn compact_rebuilds_the_base_and_clears_the_overlay() {
        let cfg = SmashConfig::row_major(&[4, 4]).unwrap();
        let mut dm = DynamicMatrix::from_smash(SmashMatrix::encode(&base(), cfg.clone()));
        dm.set(1, 1, 9.0);
        dm.delete(2, 0);
        let merged = dm.merged_csr();
        dm.compact();
        assert!(dm.overlay().is_empty());
        match dm.base() {
            DynamicBase::Smash(sm) => {
                assert_eq!(*sm, SmashMatrix::encode(&merged, cfg));
            }
            DynamicBase::Csr(_) => panic!("base format must be preserved"),
        }
        assert_eq!(dm.merged_csr(), merged);
    }
}
