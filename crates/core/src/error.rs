use std::fmt;

/// Errors produced when configuring or constructing the SMASH encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SmashError {
    /// A hierarchy must have at least one bitmap level.
    NoLevels,
    /// More levels than the implementation supports.
    TooManyLevels {
        /// Number of levels requested.
        got: usize,
        /// Supported maximum ([`crate::MAX_LEVELS`]).
        max: usize,
    },
    /// A per-level compression ratio is out of range.
    InvalidRatio {
        /// Level of the offending ratio (0 = Bitmap-0).
        level: usize,
        /// The rejected ratio.
        ratio: u32,
    },
    /// Stored arrays are mutually inconsistent (e.g. an NZA whose length is
    /// not `set_bits(Bitmap-0) * block_size`).
    Inconsistent(String),
}

impl fmt::Display for SmashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmashError::NoLevels => write!(f, "bitmap hierarchy needs at least one level"),
            SmashError::TooManyLevels { got, max } => {
                write!(
                    f,
                    "requested {got} bitmap levels, supported maximum is {max}"
                )
            }
            SmashError::InvalidRatio { level, ratio } => {
                write!(f, "invalid compression ratio {ratio} at level {level}")
            }
            SmashError::Inconsistent(msg) => write!(f, "inconsistent encoding: {msg}"),
        }
    }
}

impl std::error::Error for SmashError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(SmashError::NoLevels.to_string().contains("level"));
        assert!(SmashError::TooManyLevels { got: 9, max: 4 }
            .to_string()
            .contains('9'));
        assert!(SmashError::InvalidRatio { level: 1, ratio: 0 }
            .to_string()
            .contains("level 1"));
        assert!(SmashError::Inconsistent("x".into())
            .to_string()
            .contains('x'));
    }
}
