//! O(1) random access into the compressed hierarchy: the software
//! analogue of the BMU's per-matrix `bmapinfo` state.
//!
//! Historically every kernel that needed per-line addressing expanded the
//! *entire* logical Bitmap-0 (`BitmapHierarchy::expand_full`) — O(dense
//! size) auxiliary memory and scan time per call. [`LineDirectory`]
//! replaces that: built once per matrix, it maps each block-line to its
//! starting NZA ordinal and its cursor into the *stored* (compacted)
//! level-0 bitmap, backed by per-level [`RankIndex`]es. Any line of the
//! compressed matrix is then reachable in O(1) without touching preceding
//! rows, and [`LineCursor`] walks one line's non-zero blocks with
//! word-level count-trailing-zeros over the stored words — no per-bit
//! `get()`, no expansion.
//!
//! Auxiliary memory is O(lines + stored-bits / 512) instead of O(logical
//! bits): sublinear in the dense matrix size.

use crate::{Bitmap, BitmapHierarchy, RankIndex};

/// Per-matrix directory for O(1) row seeks into the compressed form.
///
/// The directory snapshots positional metadata of a [`BitmapHierarchy`];
/// queries take the hierarchy again (the directory does not own it) and
/// are only valid for the hierarchy the directory was built from —
/// [`SmashMatrix`](crate::SmashMatrix) builds one at construction and
/// keeps the pair together.
///
/// # Example
///
/// ```
/// use smash_core::{SmashConfig, SmashMatrix};
/// use smash_matrix::generators;
///
/// let a = generators::banded(64, 64, 3, 300, 1);
/// let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4, 16])?);
/// // Row 40's blocks, without expanding Bitmap-0:
/// for (ordinal, logical) in sm.line_cursor(40) {
///     assert_eq!(logical / sm.blocks_per_line(), 40);
///     assert!(ordinal < sm.num_blocks());
/// }
/// # Ok::<(), smash_core::SmashError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineDirectory {
    /// One rank/select index per stored bitmap level.
    level_ranks: Vec<RankIndex>,
    /// Starting NZA block ordinal of each line (length `lines + 1`).
    starts: Vec<u32>,
    /// Starting position of each line in the *stored* level-0 bitmap
    /// (length `lines + 1`).
    stored_starts: Vec<u64>,
    /// Level-0 bits per line.
    bpl: usize,
}

impl LineDirectory {
    /// Builds the directory: per-level rank indexes plus one O(levels)
    /// seek per line. Total cost O(stored bits / 64 + lines · levels).
    ///
    /// # Panics
    ///
    /// Panics if `lines * bpl` disagrees with the hierarchy's logical
    /// level-0 length.
    pub fn build(h: &BitmapHierarchy, lines: usize, bpl: usize) -> LineDirectory {
        assert_eq!(
            lines * bpl,
            h.logical_bits(0),
            "directory shape disagrees with the hierarchy"
        );
        let level_ranks: Vec<RankIndex> = (0..h.num_levels())
            .map(|l| RankIndex::build(h.stored_level(l)))
            .collect();
        let mut dir = LineDirectory {
            level_ranks,
            starts: Vec::with_capacity(lines + 1),
            stored_starts: Vec::with_capacity(lines + 1),
            bpl,
        };
        let stored0 = h.stored_level(0);
        for line in 0..lines {
            let (pos, _) = dir.locate(h, 0, line * bpl);
            dir.stored_starts.push(pos as u64);
            dir.starts
                .push(dir.level_ranks[0].rank(stored0, pos) as u32);
        }
        dir.stored_starts.push(stored0.len() as u64);
        dir.starts.push(dir.level_ranks[0].ones() as u32);
        dir
    }

    /// Number of lines covered.
    pub fn line_count(&self) -> usize {
        self.starts.len() - 1
    }

    /// Level-0 bits per line.
    pub fn blocks_per_line(&self) -> usize {
        self.bpl
    }

    /// Per-line starting NZA block ordinal (length `line_count() + 1`):
    /// entry `l` is the number of non-zero blocks strictly before line
    /// `l`. This is the array SpMM's per-line addressing reads.
    pub fn line_starts(&self) -> &[u32] {
        &self.starts
    }

    /// NZA ordinal of line `l`'s first block — an O(1) row seek.
    ///
    /// # Panics
    ///
    /// Panics if `line >= line_count()`.
    pub fn start_ordinal(&self, line: usize) -> usize {
        assert!(line < self.line_count(), "line {line} out of range");
        self.starts[line] as usize
    }

    /// Number of non-zero blocks in line `l`.
    ///
    /// # Panics
    ///
    /// Panics if `line >= line_count()`.
    pub fn blocks_in_line(&self, line: usize) -> usize {
        assert!(line < self.line_count(), "line {line} out of range");
        (self.starts[line + 1] - self.starts[line]) as usize
    }

    /// Word-level cursor over line `l`'s non-zero blocks.
    ///
    /// `h` must be the hierarchy the directory was built from.
    ///
    /// # Panics
    ///
    /// Panics if `line >= line_count()` or the hierarchy's level count
    /// disagrees with the directory.
    pub fn cursor<'a>(&'a self, h: &'a BitmapHierarchy, line: usize) -> LineCursor<'a> {
        assert!(line < self.line_count(), "line {line} out of range");
        assert_eq!(
            h.num_levels(),
            self.level_ranks.len(),
            "directory built from a different hierarchy"
        );
        LineCursor {
            stored0: h.stored_level(0),
            dir: self,
            h,
            group: if h.num_levels() == 1 {
                // Single level: stored == logical, no group mapping.
                None
            } else {
                Some(h.ratios()[1] as usize)
            },
            cur: self.stored_starts[line] as usize,
            end: self.stored_starts[line + 1] as usize,
            ordinal: self.starts[line] as usize,
            cached_group: usize::MAX,
            cached_base: 0,
        }
    }

    /// Number of non-zero blocks whose logical level-0 index is below
    /// `logical` — rank into the *logical* Bitmap-0 in O(levels) without
    /// expanding it.
    ///
    /// # Panics
    ///
    /// Panics if `logical > h.logical_bits(0)` or the hierarchy disagrees
    /// with the directory.
    pub fn block_rank(&self, h: &BitmapHierarchy, logical: usize) -> usize {
        assert_eq!(h.num_levels(), self.level_ranks.len(), "hierarchy mismatch");
        if logical >= h.logical_bits(0) {
            assert_eq!(logical, h.logical_bits(0), "logical index out of range");
            return self.level_ranks[0].ones();
        }
        let (pos, _) = self.locate(h, 0, logical);
        self.level_ranks[0].rank(h.stored_level(0), pos)
    }

    /// Logical level-0 index of NZA block `ordinal` — select into the
    /// *logical* Bitmap-0 in O(levels), or `None` past the last block.
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy disagrees with the directory.
    pub fn block_select(&self, h: &BitmapHierarchy, ordinal: usize) -> Option<usize> {
        assert_eq!(h.num_levels(), self.level_ranks.len(), "hierarchy mismatch");
        let s = self.level_ranks[0].select(h.stored_level(0), ordinal)?;
        Some(self.stored_to_logical(h, 0, s))
    }

    /// Directory footprint in bytes — the peak auxiliary memory an
    /// indexed kernel needs, O(lines + stored-bits / 512).
    pub fn aux_bytes(&self) -> usize {
        self.level_ranks
            .iter()
            .map(RankIndex::aux_bytes)
            .sum::<usize>()
            + self.starts.len() * std::mem::size_of::<u32>()
            + self.stored_starts.len() * std::mem::size_of::<u64>()
    }

    /// Maps logical bit `j` of `level` to its position in the stored
    /// (compacted) bitmap, returning `(position, present)`. When the
    /// group holding `j` was compacted away, `position` is the insertion
    /// point: every stored set bit below it has a smaller logical index.
    fn locate(&self, h: &BitmapHierarchy, level: usize, j: usize) -> (usize, bool) {
        let top = h.num_levels() - 1;
        if level == top {
            // The top level is stored in full: logical == stored.
            return (j, true);
        }
        let g = h.ratios()[level + 1] as usize;
        let (parent_pos, parent_exists) = self.locate(h, level + 1, j / g);
        let parent_bitmap = h.stored_level(level + 1);
        let present = parent_exists && parent_bitmap.get(parent_pos);
        // Groups stored before this one = set parent bits before `j / g`.
        let k = self.level_ranks[level + 1].rank(parent_bitmap, parent_pos);
        if present {
            (k * g + j % g, true)
        } else {
            (k * g, false)
        }
    }

    /// Maps stored bit `s` of `level` back to its logical index, walking
    /// the parent chain upward with one O(1) select per level.
    fn stored_to_logical(&self, h: &BitmapHierarchy, level: usize, s: usize) -> usize {
        let top = h.num_levels() - 1;
        if level == top {
            return s;
        }
        let g = h.ratios()[level + 1] as usize;
        let parent_pos = self.level_ranks[level + 1]
            .select(h.stored_level(level + 1), s / g)
            .expect("stored group always has a set parent bit");
        self.stored_to_logical(h, level + 1, parent_pos) * g + s % g
    }
}

/// Iterator over one line's non-zero blocks, yielding
/// `(nza_ordinal, logical_level0_index)` in block order.
///
/// The cursor scans the *stored* level-0 words with count-trailing-zeros
/// (no per-bit `get()`, no expansion) and recovers each block's logical
/// position through one upward select chain per stored group — amortized
/// O(1) per block. Produced by [`LineDirectory::cursor`] /
/// [`SmashMatrix::line_cursor`](crate::SmashMatrix::line_cursor).
#[derive(Debug, Clone)]
pub struct LineCursor<'a> {
    stored0: &'a Bitmap,
    dir: &'a LineDirectory,
    h: &'a BitmapHierarchy,
    /// Stored level-0 group size (`ratios[1]`), or `None` for
    /// single-level hierarchies where stored == logical.
    group: Option<usize>,
    cur: usize,
    end: usize,
    ordinal: usize,
    cached_group: usize,
    cached_base: usize,
}

impl Iterator for LineCursor<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        let s = self.stored0.next_one(self.cur).filter(|&s| s < self.end)?;
        self.cur = s + 1;
        let logical = match self.group {
            None => s,
            Some(g) => {
                let k = s / g;
                if k != self.cached_group {
                    self.cached_group = k;
                    let parent_pos = self.dir.level_ranks[1]
                        .select(self.h.stored_level(1), k)
                        .expect("stored group always has a set parent bit");
                    self.cached_base = self.dir.stored_to_logical(self.h, 1, parent_pos) * g;
                }
                self.cached_base + s % g
            }
        };
        let ordinal = self.ordinal;
        self.ordinal += 1;
        Some((ordinal, logical))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Between 0 (tail bits may be clear) and the stored span.
        (0, Some(self.end.saturating_sub(self.cur)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bm(bits: &[usize], len: usize) -> Bitmap {
        let mut b = Bitmap::zeros(len);
        for &i in bits {
            b.set(i, true);
        }
        b
    }

    /// Oracle: the cursor must agree with filtering the expanded bitmap.
    fn check_against_expansion(h: &BitmapHierarchy, lines: usize, bpl: usize) {
        let dir = LineDirectory::build(h, lines, bpl);
        let full = h.expand_full(0);
        let all: Vec<usize> = full.iter_ones().collect();
        let mut expect_ord = 0usize;
        for line in 0..lines {
            let want: Vec<(usize, usize)> = all
                .iter()
                .enumerate()
                .filter(|(_, &l)| l / bpl == line)
                .map(|(o, &l)| (o, l))
                .collect();
            let got: Vec<(usize, usize)> = dir.cursor(h, line).collect();
            assert_eq!(got, want, "line {line}");
            assert_eq!(dir.start_ordinal(line), expect_ord);
            assert_eq!(dir.blocks_in_line(line), want.len());
            expect_ord += want.len();
        }
        // Logical rank/select agree with the expansion too.
        for logical in 0..=h.logical_bits(0) {
            assert_eq!(dir.block_rank(h, logical), full.rank(logical));
        }
        for (k, &l) in all.iter().enumerate() {
            assert_eq!(dir.block_select(h, k), Some(l));
        }
        assert_eq!(dir.block_select(h, all.len()), None);
    }

    #[test]
    fn cursor_matches_expansion_across_shapes() {
        // (bits, len, lines, bpl, ratios)
        let cases: Vec<(Vec<usize>, usize, usize, Vec<u32>)> = vec![
            (vec![0, 2, 13], 16, 4, vec![2, 4]),
            (vec![3, 17, 40, 41, 63], 64, 8, vec![2, 4, 4]),
            (vec![], 64, 8, vec![2, 8]),
            ((0..64).collect(), 64, 4, vec![2, 2, 2, 2]),
            (vec![9], 10, 2, vec![2, 4]),
            (vec![0, 299], 300, 10, vec![2, 8, 8]),
            (vec![5, 6, 7], 40, 5, vec![2]), // single level
        ];
        for (bits, len, lines, ratios) in cases {
            let bpl = len / lines;
            let h = BitmapHierarchy::from_level0(&bm(&bits, len), &ratios).unwrap();
            check_against_expansion(&h, lines, bpl);
        }
    }

    #[test]
    fn cursor_handles_groups_straddling_lines() {
        // bpl = 3 with ratio-4 groups: every group crosses a line border.
        let bits: Vec<usize> = (0..60).filter(|i| i % 5 != 2).collect();
        let h = BitmapHierarchy::from_level0(&bm(&bits, 60), &[2, 4, 4]).unwrap();
        check_against_expansion(&h, 20, 3);
    }

    #[test]
    fn directory_rejects_wrong_shape() {
        let h = BitmapHierarchy::from_level0(&bm(&[1], 16), &[2, 4]).unwrap();
        let result = std::panic::catch_unwind(|| LineDirectory::build(&h, 3, 4));
        assert!(result.is_err(), "12 != 16 logical bits must panic");
    }
}
