//! Storage-efficiency accounting for the Fig. 19 experiment.
//!
//! The paper's "total compression ratio" is the size of the original
//! uncompressed matrix divided by the total size of every data structure the
//! compressed format needs. For CSR that is `row_ptr + col_ind + values`;
//! for SMASH it is every stored bitmap level (compacted, per Fig. 4(b))
//! plus the NZA.

use crate::{SmashConfig, SmashMatrix};
use smash_matrix::{Csr, Scalar};

/// Side-by-side storage footprint of one matrix under CSR and SMASH.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageReport {
    /// Uncompressed dense footprint in bytes.
    pub dense_bytes: usize,
    /// CSR footprint in bytes.
    pub csr_bytes: usize,
    /// SMASH footprint in bytes (bitmap hierarchy + NZA).
    pub smash_bytes: usize,
    /// Bytes of the SMASH footprint occupied by bitmap metadata.
    pub smash_bitmap_bytes: usize,
    /// Explicit zeros stored in the NZA.
    pub nza_zeros: usize,
}

impl StorageReport {
    /// CSR total compression ratio (dense / CSR).
    pub fn csr_ratio(&self) -> f64 {
        self.dense_bytes as f64 / self.csr_bytes.max(1) as f64
    }

    /// SMASH total compression ratio (dense / SMASH).
    pub fn smash_ratio(&self) -> f64 {
        self.dense_bytes as f64 / self.smash_bytes.max(1) as f64
    }

    /// SMASH ratio relative to CSR (> 1 means SMASH stores the matrix in
    /// less space; the paper reports up to 2.48x at high densities).
    pub fn smash_over_csr(&self) -> f64 {
        self.smash_ratio() / self.csr_ratio()
    }
}

/// Measures both footprints for `csr` with the given SMASH configuration.
///
/// # Example
///
/// ```
/// use smash_core::{storage, SmashConfig};
/// use smash_matrix::generators;
///
/// let m = generators::block_dense(128, 128, 2000, 8, 5);
/// let report = storage::compare(&m, &SmashConfig::row_major(&[2, 4, 16])?);
/// assert!(report.smash_ratio() > 1.0);
/// # Ok::<(), smash_core::SmashError>(())
/// ```
pub fn compare<T: Scalar>(csr: &Csr<T>, config: &SmashConfig) -> StorageReport {
    let sm = SmashMatrix::encode(csr, config.clone());
    StorageReport {
        dense_bytes: csr.rows() * csr.cols() * std::mem::size_of::<T>(),
        csr_bytes: csr.storage_bytes(),
        smash_bytes: sm.storage_bytes(),
        smash_bitmap_bytes: sm.hierarchy().storage_bits().div_ceil(8),
        nza_zeros: sm.nza().len() - sm.nza().nnz(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_matrix::generators;

    fn cfg() -> SmashConfig {
        SmashConfig::row_major(&[2, 4, 16]).unwrap()
    }

    #[test]
    fn report_fields_are_consistent() {
        let m = generators::uniform(100, 100, 500, 3);
        let r = compare(&m, &cfg());
        assert_eq!(r.dense_bytes, 100 * 100 * 8);
        assert!(r.smash_bitmap_bytes < r.smash_bytes);
        assert!(r.csr_ratio() > 1.0);
        assert!(r.smash_ratio() > 1.0);
    }

    #[test]
    fn clustered_matrices_store_fewer_nza_zeros() {
        let scattered = generators::uniform(128, 128, 1000, 5);
        let clustered = generators::clustered(128, 128, 1000, 8, 5);
        let rs = compare(&scattered, &cfg());
        let rc = compare(&clustered, &cfg());
        assert!(rc.nza_zeros < rs.nza_zeros);
        assert!(rc.smash_over_csr() > rs.smash_over_csr());
    }

    #[test]
    fn highly_sparse_favours_csr() {
        let m = generators::uniform(4096, 4096, 100, 7);
        let r = compare(&m, &cfg());
        assert!(r.smash_over_csr() < 1.0, "ratio {}", r.smash_over_csr());
    }

    #[test]
    fn dense_clustered_favours_smash() {
        let m = generators::block_dense(128, 128, 2500, 8, 9);
        let r = compare(&m, &cfg());
        assert!(r.smash_over_csr() > 1.0);
    }
}
