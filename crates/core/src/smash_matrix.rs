use crate::{
    Bitmap, BitmapHierarchy, Layout, LineCursor, LineDirectory, Nza, SmashConfig, SmashError,
};
use smash_matrix::{Coo, Csr, Dense, RowRead, Scalar};
use std::sync::atomic::{AtomicBool, Ordering};

/// Invokes `f(local_block_index, block_values)` for each occupied block of
/// one line, in block order. `offsets`/`values` are the line's sorted
/// entries; `block` is a caller-provided scratch buffer of length `b0`
/// whose contents are the zero-padded block at each invocation.
///
/// Both the serial encoder ([`SmashMatrix::encode`]) and the parallel one
/// (`smash_parallel::par_csr_to_smash`) build their NZA through this single
/// routine — sharing it is what keeps the two bit-identical.
pub fn for_each_line_block<T: Scalar>(
    offsets: &[u32],
    values: &[T],
    block: &mut [T],
    mut f: impl FnMut(usize, &[T]),
) {
    let b0 = block.len();
    let mut k = 0usize;
    while k < offsets.len() {
        // Entries are sorted, so each occupied block's elements are
        // consecutive.
        let blk = offsets[k] as usize / b0;
        let block_start = blk * b0;
        block.iter_mut().for_each(|v| *v = T::ZERO);
        while k < offsets.len() && (offsets[k] as usize) < block_start + b0 {
            block[offsets[k] as usize - block_start] = values[k];
            k += 1;
        }
        f(blk, block);
    }
}

/// Dot product of one NZA block against `n` contiguous elements of `x`
/// starting at `col`, accumulated in the lane-striped order of
/// `smash_matrix::simd` by whichever ISA body is active (AVX2, SSE4.2, or
/// the scalar emulation of the same order).
///
/// This is the per-block body of every SMASH SpMV path — the serial
/// single-level word scan and multi-level cursor walk
/// (`smash_kernels::native::spmv_smash`) and the parallel row-range kernel
/// (`smash_parallel::par_spmv_smash`) all call it, so their arithmetic
/// order can never diverge and parallel output stays bit-identical to
/// serial at every precision and under every ISA tier.
///
/// # Example
///
/// ```
/// use smash_core::block_dot;
///
/// let block = [2.0f64, 3.0];
/// let x = [1.0, 10.0, 100.0, 1000.0];
/// assert_eq!(block_dot(&block, &x, 2, 2), 2.0 * 100.0 + 3.0 * 1000.0);
/// ```
#[inline]
pub fn block_dot<T: Scalar>(block: &[T], x: &[T], col: usize, n: usize) -> T {
    T::simd_dot_contiguous(&block[..n], &x[col..col + n])
}

/// Visits every non-zero block of a row-major SMASH matrix in storage
/// order, invoking `f(row, col, ordinal)` with the block's matrix row, its
/// starting logical column, and its NZA ordinal.
///
/// This is *the* serial scan of the compressed form — the §4.4 software
/// loop: a word-level `trailing_zeros` pass over the stored Bitmap-0 when
/// the hierarchy is one level, the depth-first cursor otherwise. The
/// serial SpMV (`smash_kernels::native::spmv_smash`) and the serial
/// batched SpMM (`spmm_dense_smash`) both drive it, so their block
/// visitation order — the foundation of the per-column bit-identity
/// between the two — has exactly one definition.
///
/// # Panics
///
/// Panics if the matrix is not row-major.
#[inline]
pub fn for_each_nz_block<T: Scalar>(a: &SmashMatrix<T>, mut f: impl FnMut(usize, usize, usize)) {
    assert_eq!(a.config().layout(), Layout::RowMajor, "row-major scan");
    let b0 = a.config().block_size();
    let bpl = a.blocks_per_line();
    let mut ordinal = 0usize;
    if a.hierarchy().num_levels() == 1 {
        // Single-level fast path: the §4.4 loop verbatim — load a 64-bit
        // bitmap word, trailing_zeros to find the set bit, AND to clear it.
        let words = a.hierarchy().stored_level(0).words();
        let total_bits = a.hierarchy().stored_level(0).len();
        for (wi, &word) in words.iter().enumerate() {
            let mut m = word;
            while m != 0 {
                let logical = wi * 64 + m.trailing_zeros() as usize;
                m &= m - 1;
                if logical >= total_bits {
                    break;
                }
                f(logical / bpl, (logical % bpl) * b0, ordinal);
                ordinal += 1;
            }
        }
        return;
    }
    // Multi-level hierarchies scan through the depth-first cursor.
    for logical in a.hierarchy().blocks() {
        f(logical / bpl, (logical % bpl) * b0, ordinal);
        ordinal += 1;
    }
}

/// Multiplies one NZA block (logical columns `col..col + n`) against every
/// column of the dense right-hand-side batch `b`, accumulating into the
/// output row `out` (`out[j] += Σ_k block[k] * b[col + k][j]`).
///
/// This is the per-block body of every *batched* SMASH SpMM path: the
/// serial `smash_kernels::native::spmm_dense_smash` and the parallel
/// `smash_parallel::par_spmm_dense_smash` both call it, so their
/// arithmetic order can never diverge. The columns of `b` are processed in
/// register-blocked tiles of width 8/4/1; within a tile each column
/// follows exactly the lane-striped order of [`block_dot`], so column `j`
/// of the batched result is bit-identical to a SMASH SpMV against column
/// `j` alone, under every `smash_matrix::simd` ISA tier.
///
/// # Panics
///
/// Panics if `out.len() != b.cols()`, `n > block.len()`, or
/// `col + n > b.rows()`.
#[inline]
pub fn block_axpy_dense<T: Scalar>(block: &[T], b: &Dense<T>, col: usize, n: usize, out: &mut [T]) {
    assert!(n <= block.len(), "n must not exceed the block length");
    smash_matrix::axpy_dense_tiles(&block[..n], b, col, out);
}

/// A sparse matrix compressed with the SMASH encoding: a hierarchy of
/// bitmaps plus the Non-Zero Values Array (paper §3.2, §4.1).
///
/// The matrix is linearized in the configured [`Layout`] with every line
/// (row, or column for [`Layout::ColMajor`]) padded to a multiple of the
/// Bitmap-0 ratio, so blocks never straddle lines and a line's bitmap slice
/// is addressable — which is what `rdbmap [bitmap + rowOffset]` relies on in
/// the paper's SpMM (Algorithm 2).
///
/// # Example
///
/// ```
/// use smash_core::{SmashConfig, SmashMatrix};
/// use smash_matrix::generators;
///
/// let a = generators::banded(64, 64, 3, 300, 1);
/// let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4, 16])?);
/// assert_eq!(sm.decode(), a);              // lossless
/// assert_eq!(sm.nnz(), a.nnz());           // no non-zeros lost
/// assert_eq!(sm.nza().len() % 2, 0);       // whole 2-element blocks
/// # Ok::<(), smash_core::SmashError>(())
/// ```
#[derive(Debug)]
pub struct SmashMatrix<T> {
    rows: usize,
    cols: usize,
    config: SmashConfig,
    hierarchy: BitmapHierarchy,
    nza: Nza<T>,
    /// O(1) per-line index into the compressed form, built once at
    /// construction (deterministic from the hierarchy, so it never
    /// affects equality semantics in practice).
    directory: LineDirectory,
    /// Cached outcome of [`validate`](Self::validate): once the structural
    /// invariants have been checked, repeated validation is O(1). Purely an
    /// acceleration — never consulted for correctness decisions, excluded
    /// from `PartialEq`, and copied by `Clone`.
    verified: AtomicBool,
}

// Manual impls because `verified` is an `AtomicBool` (not `Clone`/
// `PartialEq`) and must not participate in equality: two matrices with the
// same structure are equal whether or not either has been validated yet.
impl<T: Clone> Clone for SmashMatrix<T> {
    fn clone(&self) -> Self {
        SmashMatrix {
            rows: self.rows,
            cols: self.cols,
            config: self.config.clone(),
            hierarchy: self.hierarchy.clone(),
            nza: self.nza.clone(),
            directory: self.directory.clone(),
            verified: AtomicBool::new(self.verified.load(Ordering::Acquire)),
        }
    }
}

impl<T: PartialEq> PartialEq for SmashMatrix<T> {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.config == other.config
            && self.hierarchy == other.hierarchy
            && self.nza == other.nza
            && self.directory == other.directory
    }
}

impl<T: Scalar> SmashMatrix<T> {
    /// Compresses a CSR matrix with the given configuration.
    ///
    /// This is the conversion procedure of paper §4.1.3: discover the
    /// non-zero blocks, append them to the NZA, then build Bitmap-0 and the
    /// higher levels.
    pub fn encode(csr: &Csr<T>, config: SmashConfig) -> Self {
        match config.layout() {
            Layout::RowMajor => Self::encode_lines(csr.rows(), csr.cols(), config, |l| csr.row(l)),
            Layout::ColMajor => {
                // Column-major encoding walks the CSC transpose-view.
                let csc = csr.to_csc();
                Self::encode_lines(csr.rows(), csr.cols(), config, |l| csc.col(l))
            }
        }
    }

    /// Shared encoder over an abstract "line" accessor (CSR rows or CSC
    /// columns), each line yielding sorted `(offset, value)` entries.
    fn encode_lines<'m, F>(rows: usize, cols: usize, config: SmashConfig, line_entries: F) -> Self
    where
        T: 'm,
        F: Fn(usize) -> (&'m [u32], &'m [T]),
    {
        let b0 = config.block_size();
        let (lines, line_len) = match config.layout() {
            Layout::RowMajor => (rows, cols),
            Layout::ColMajor => (cols, rows),
        };
        let blocks_per_line = line_len.div_ceil(b0);
        let mut bm0 = Bitmap::zeros(lines * blocks_per_line);

        // Pass 1: mark occupied blocks.
        for line in 0..lines {
            let (offsets, _) = line_entries(line);
            for &o in offsets {
                bm0.set(line * blocks_per_line + o as usize / b0, true);
            }
        }

        let hierarchy = BitmapHierarchy::from_level0(&bm0, config.ratios())
            .expect("config was validated at construction");

        // Pass 2: fill the NZA in bit order (which is line order, then block
        // order within the line), through the per-line routine shared with
        // the parallel encoder.
        let mut nza = Nza::new(b0);
        let mut block = vec![T::ZERO; b0];
        for line in 0..lines {
            let (offsets, values) = line_entries(line);
            for_each_line_block(offsets, values, &mut block, |blk, vals| {
                debug_assert!(bm0.get(line * blocks_per_line + blk), "pass 1 marked it");
                nza.push_block(vals);
            });
        }

        Self::assemble(rows, cols, config, hierarchy, nza)
    }

    /// Builds the line directory and packs the struct. Callers must have
    /// established the structural invariants first ([`validate_parts`]).
    ///
    /// [`validate_parts`]: Self::validate_parts
    fn assemble(
        rows: usize,
        cols: usize,
        config: SmashConfig,
        hierarchy: BitmapHierarchy,
        nza: Nza<T>,
    ) -> Self {
        let (lines, line_len) = match config.layout() {
            Layout::RowMajor => (rows, cols),
            Layout::ColMajor => (cols, rows),
        };
        let bpl = line_len.div_ceil(config.block_size());
        let directory = LineDirectory::build(&hierarchy, lines, bpl);
        SmashMatrix {
            rows,
            cols,
            config,
            hierarchy,
            nza,
            directory,
            // Every construction path either builds the invariants itself
            // (the encoders) or checks them first (`from_parts`), so an
            // assembled matrix starts out verified.
            verified: AtomicBool::new(true),
        }
    }

    /// Checks the structural invariants on loose parts, before assembly.
    ///
    /// # Errors
    ///
    /// Returns [`SmashError::Inconsistent`] on the first violation.
    fn validate_parts(
        rows: usize,
        cols: usize,
        config: &SmashConfig,
        hierarchy: &BitmapHierarchy,
        nza: &Nza<T>,
    ) -> Result<(), SmashError> {
        hierarchy.validate()?;
        if nza.num_blocks() != hierarchy.num_blocks() {
            return Err(SmashError::Inconsistent(format!(
                "NZA holds {} blocks but Bitmap-0 has {} set bits",
                nza.num_blocks(),
                hierarchy.num_blocks()
            )));
        }
        if nza.block_size() != config.block_size() {
            return Err(SmashError::Inconsistent(
                "NZA block size differs from configured Bitmap-0 ratio".into(),
            ));
        }
        let (lines, line_len) = match config.layout() {
            Layout::RowMajor => (rows, cols),
            Layout::ColMajor => (cols, rows),
        };
        let expect_bits = lines * line_len.div_ceil(config.block_size());
        if hierarchy.logical_bits(0) != expect_bits {
            return Err(SmashError::Inconsistent(format!(
                "Bitmap-0 logical length {} != lines * blocks_per_line = {}",
                hierarchy.logical_bits(0),
                expect_bits
            )));
        }
        Ok(())
    }

    /// Assembles a matrix from an already-built hierarchy and NZA,
    /// validating every structural invariant. This is the constructor the
    /// parallel encoder (`smash-parallel`) uses after its workers have
    /// produced the per-range bitmap segments and value blocks.
    ///
    /// # Errors
    ///
    /// Returns [`SmashError::Inconsistent`] if the parts disagree (NZA
    /// block count vs Bitmap-0 population, block size vs configuration,
    /// or bitmap extent vs the padded matrix shape).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        config: SmashConfig,
        hierarchy: BitmapHierarchy,
        nza: Nza<T>,
    ) -> Result<Self, SmashError> {
        Self::validate_parts(rows, cols, &config, &hierarchy, &nza)?;
        Ok(Self::assemble(rows, cols, config, hierarchy, nza))
    }

    /// Assembles a matrix from per-range lists of occupied logical
    /// Bitmap-0 bit indices and the matching zero-padded block values, in
    /// bit order — the shape producers that compress on the fly emit:
    /// each part holds one contiguous line range's `(bit, block)` stream,
    /// and concatenating the parts in order yields the whole matrix.
    ///
    /// Both the parallel encoder (`smash_parallel::par_csr_to_smash`) and
    /// the SpGEMM engine's direct-to-SMASH emission
    /// (`smash_kernels::spgemm`) assemble through this single routine, so
    /// a matrix built from parts is `==` to one built by
    /// [`SmashMatrix::encode`] from the equivalent CSR.
    ///
    /// # Errors
    ///
    /// Returns [`SmashError::Inconsistent`] if the concatenated bit
    /// indices are not strictly increasing (parts out of order would
    /// silently misalign blocks and values), a bit index is out of range,
    /// or the assembled parts violate any [`from_parts`] invariant.
    ///
    /// [`from_parts`]: Self::from_parts
    pub fn from_bit_blocks(
        rows: usize,
        cols: usize,
        config: SmashConfig,
        parts: &[(Vec<usize>, Vec<T>)],
    ) -> Result<Self, SmashError> {
        let (lines, line_len) = match config.layout() {
            Layout::RowMajor => (rows, cols),
            Layout::ColMajor => (cols, rows),
        };
        let total_bits = lines * line_len.div_ceil(config.block_size());
        let mut bm0 = Bitmap::zeros(total_bits);
        let mut all_vals = Vec::with_capacity(parts.iter().map(|(_, v)| v.len()).sum());
        let mut prev: Option<usize> = None;
        for (bits, vals) in parts {
            for &bit in bits {
                if prev.is_some_and(|p| p >= bit) {
                    return Err(SmashError::Inconsistent(format!(
                        "bit indices must be strictly increasing across parts \
                         ({} then {bit})",
                        prev.unwrap(),
                    )));
                }
                if bit >= total_bits {
                    return Err(SmashError::Inconsistent(format!(
                        "bit index {bit} outside the {total_bits}-bit Bitmap-0"
                    )));
                }
                bm0.set(bit, true);
                prev = Some(bit);
            }
            all_vals.extend_from_slice(vals);
        }
        let hierarchy = BitmapHierarchy::from_level0(&bm0, config.ratios())?;
        let nza = Nza::from_values(config.block_size(), all_vals);
        Self::from_parts(rows, cols, config, hierarchy, nza)
    }

    /// Decompresses back to CSR. Explicit zeros inside NZA blocks are
    /// dropped, so `decode(encode(m)) == m` for any matrix without stored
    /// zeros.
    pub fn decode(&self) -> Csr<T> {
        let mut coo = Coo::with_capacity(self.rows, self.cols, self.nza.nnz());
        let b0 = self.config.block_size();
        let bpl = self.blocks_per_line();
        let line_len = self.line_len();
        for (ordinal, logical) in self.hierarchy.blocks().enumerate() {
            let line = logical / bpl;
            let start = (logical % bpl) * b0;
            let block = self.nza.block(ordinal);
            for (e, &v) in block.iter().enumerate() {
                let off = start + e;
                if off >= line_len || v.is_zero() {
                    continue;
                }
                let (r, c) = match self.config.layout() {
                    Layout::RowMajor => (line, off),
                    Layout::ColMajor => (off, line),
                };
                coo.push(r, c, v);
            }
        }
        Csr::from_coo(&coo)
    }

    /// Expands to a dense matrix.
    pub fn to_dense(&self) -> Dense<T> {
        self.decode().to_dense()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The encoding configuration.
    pub fn config(&self) -> &SmashConfig {
        &self.config
    }

    /// The bitmap hierarchy.
    pub fn hierarchy(&self) -> &BitmapHierarchy {
        &self.hierarchy
    }

    /// The non-zero values array.
    pub fn nza(&self) -> &Nza<T> {
        &self.nza
    }

    /// Number of logical non-zeros (explicit zeros in NZA blocks excluded).
    pub fn nnz(&self) -> usize {
        self.nza.nnz()
    }

    /// Number of NZA blocks (= set bits of Bitmap-0).
    pub fn num_blocks(&self) -> usize {
        self.nza.num_blocks()
    }

    /// Lines in the configured layout (rows, or columns for col-major).
    pub fn line_count(&self) -> usize {
        match self.config.layout() {
            Layout::RowMajor => self.rows,
            Layout::ColMajor => self.cols,
        }
    }

    /// Elements per line before padding (cols, or rows for col-major).
    pub fn line_len(&self) -> usize {
        match self.config.layout() {
            Layout::RowMajor => self.cols,
            Layout::ColMajor => self.rows,
        }
    }

    /// Level-0 bits per line.
    pub fn blocks_per_line(&self) -> usize {
        self.line_len().div_ceil(self.config.block_size())
    }

    /// Maps a logical level-0 bit index to `(line, element offset)` of the
    /// block start.
    pub fn block_position(&self, logical: usize) -> (usize, usize) {
        let bpl = self.blocks_per_line();
        (logical / bpl, (logical % bpl) * self.config.block_size())
    }

    /// Maps a logical level-0 bit index to the `(row, col)` of the block
    /// start in the original matrix, layout-aware. This is the
    /// `row_index`/`column_index` pair the BMU publishes via `RDIND`.
    pub fn block_row_col(&self, logical: usize) -> (usize, usize) {
        let (line, off) = self.block_position(logical);
        match self.config.layout() {
            Layout::RowMajor => (line, off),
            Layout::ColMajor => (off, line),
        }
    }

    /// Iterates over `(row, col_of_block_start, block_values)` in storage
    /// order — what a software SpMV walks.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (usize, usize, &[T])> + '_ {
        self.hierarchy
            .blocks()
            .enumerate()
            .map(move |(ordinal, logical)| {
                let (r, c) = self.block_row_col(logical);
                (r, c, self.nza.block(ordinal))
            })
    }

    /// Reconstructs the full (uncompacted) Bitmap-0, whose bit `line *
    /// blocks_per_line + b` covers block `b` of that line. Single-level
    /// hierarchies store Bitmap-0 in this form already.
    ///
    /// O(logical bits) memory and time — this is the expansion the
    /// kernels used to pay on every call and no longer do; it remains as
    /// the property-test oracle for [`line_cursor`](Self::line_cursor)
    /// and for format conversions that need the dense bitmap.
    pub fn full_bitmap0(&self) -> Bitmap {
        self.hierarchy.expand_full(0)
    }

    /// The per-line directory: O(1) row seeks into the compressed form
    /// (starting NZA ordinals, stored-bitmap cursors, logical
    /// rank/select) — the software analogue of the BMU's `bmapinfo`
    /// state. Built once at construction; O(lines + stored bits / 512)
    /// memory.
    pub fn directory(&self) -> &LineDirectory {
        &self.directory
    }

    /// Word-level cursor over one line's non-zero blocks, yielding
    /// `(nza_ordinal, logical_bitmap0_index)` in block order — no bitmap
    /// expansion, O(1) seek to the line.
    ///
    /// # Panics
    ///
    /// Panics if `line >= line_count()`.
    pub fn line_cursor(&self, line: usize) -> LineCursor<'_> {
        self.directory.cursor(&self.hierarchy, line)
    }

    /// Per-line starting NZA block ordinal (length `line_count() + 1`): the
    /// rank of each line's first bit in the full Bitmap-0. SpMM uses this to
    /// address a line's blocks directly. Served from the
    /// [`directory`](Self::directory) in O(1) — no expansion.
    pub fn line_block_starts(&self) -> &[u32] {
        self.directory.line_starts()
    }

    /// Recomputes the per-line block starts by scanning an
    /// already-expanded Bitmap-0. O(logical bits); kept as the oracle the
    /// directory-backed [`line_block_starts`](Self::line_block_starts)
    /// is property-tested against.
    pub fn line_block_starts_in(&self, full: &Bitmap) -> Vec<u32> {
        let bpl = self.blocks_per_line();
        let mut starts = Vec::with_capacity(self.line_count() + 1);
        let mut acc = 0u32;
        starts.push(0);
        let mut ones = full.iter_ones().peekable();
        for line in 0..self.line_count() {
            let end = (line + 1) * bpl;
            while ones.peek().is_some_and(|&i| i < end) {
                ones.next();
                acc += 1;
            }
            starts.push(acc);
        }
        starts
    }

    /// Total compressed footprint in bytes: all bitmap levels (compacted, as
    /// stored per Fig. 4(b)) plus the NZA. This is the SMASH side of the
    /// Fig. 19 storage comparison.
    pub fn storage_bytes(&self) -> usize {
        self.hierarchy.storage_bits().div_ceil(8) + self.nza.storage_bytes()
    }

    /// Ratio of the uncompressed dense footprint to [`storage_bytes`]
    /// (paper Fig. 19's "total compression ratio").
    ///
    /// [`storage_bytes`]: SmashMatrix::storage_bytes
    pub fn total_compression_ratio(&self) -> f64 {
        let dense = self.rows * self.cols * std::mem::size_of::<T>();
        dense as f64 / self.storage_bytes().max(1) as f64
    }

    /// Measured locality of sparsity (§7.2.3): average non-zeros per NZA
    /// block divided by the block size.
    pub fn locality_of_sparsity(&self) -> f64 {
        if self.nza.is_empty() {
            0.0
        } else {
            1.0 - self.nza.zero_fraction()
        }
    }

    /// Sparse matrix addition directly on the encoding (paper §5.2.1 lists
    /// SpAdd among the operations SMASH accelerates): the output Bitmap-0
    /// is the word-wise OR of the operands' bitmaps, and the output NZA is
    /// a block-level merge — no per-element index discovery at all.
    ///
    /// Both operands must share dimensions, layout and block size; the
    /// result uses `self`'s configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SmashError::Inconsistent`] if the operands' shapes,
    /// layouts or block sizes differ.
    pub fn add(&self, other: &SmashMatrix<T>) -> Result<SmashMatrix<T>, SmashError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(SmashError::Inconsistent(format!(
                "operand shapes differ: {}x{} vs {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        if self.config.layout() != other.config.layout() {
            return Err(SmashError::Inconsistent("operand layouts differ".into()));
        }
        let b0 = self.config.block_size();
        if b0 != other.config.block_size() {
            return Err(SmashError::Inconsistent(format!(
                "block sizes differ: {b0} vs {}",
                other.config.block_size()
            )));
        }
        // Two-cursor block-level merge over the set Bitmap-0 bits.
        let mut bm0 = Bitmap::zeros(self.line_count() * self.blocks_per_line());
        let mut nza = Nza::new(b0);
        let mut ia = self.hierarchy.blocks().enumerate().peekable();
        let mut ib = other.hierarchy.blocks().enumerate().peekable();
        let mut sum = vec![T::ZERO; b0];
        loop {
            let (take_a, take_b) = match (ia.peek(), ib.peek()) {
                (None, None) => break,
                (Some(_), None) => (true, false),
                (None, Some(_)) => (false, true),
                (Some(&(_, la)), Some(&(_, lb))) => (la <= lb, lb <= la),
            };
            let logical = match (take_a, take_b) {
                (true, true) => {
                    let (oa, la) = ia.next().expect("peeked");
                    let (ob, _) = ib.next().expect("peeked");
                    for (s, (x, y)) in sum
                        .iter_mut()
                        .zip(self.nza.block(oa).iter().zip(other.nza.block(ob)))
                    {
                        *s = *x + *y;
                    }
                    la
                }
                (true, false) => {
                    let (oa, la) = ia.next().expect("peeked");
                    sum.copy_from_slice(self.nza.block(oa));
                    la
                }
                (false, true) => {
                    let (ob, lb) = ib.next().expect("peeked");
                    sum.copy_from_slice(other.nza.block(ob));
                    lb
                }
                (false, false) => unreachable!("merge invariant"),
            };
            // Entries may cancel to exactly zero; an all-zero block is
            // dropped entirely (its Bitmap-0 bit stays clear).
            if sum.iter().any(|v| !v.is_zero()) {
                bm0.set(logical, true);
                nza.push_block(&sum);
            }
        }
        let hierarchy = BitmapHierarchy::from_level0(&bm0, self.config.ratios())?;
        let out = Self::assemble(self.rows, self.cols, self.config.clone(), hierarchy, nza);
        debug_assert!(out.validate().is_ok());
        Ok(out)
    }

    /// Checks all structural invariants.
    ///
    /// The outcome is cached: the first successful call stores a verified
    /// marker and later calls return in O(1), so hot paths (the executor's
    /// `try_*` tier validates operands on every call) never re-pay the
    /// full scan.
    ///
    /// # Errors
    ///
    /// Returns [`SmashError::Inconsistent`] on the first violation.
    pub fn validate(&self) -> Result<(), SmashError> {
        if self.verified.load(Ordering::Acquire) {
            return Ok(());
        }
        Self::validate_parts(
            self.rows,
            self.cols,
            &self.config,
            &self.hierarchy,
            &self.nza,
        )?;
        self.verified.store(true, Ordering::Release);
        Ok(())
    }

    /// Whether this matrix has already passed [`validate`](Self::validate)
    /// (all construction paths validate, so this is normally `true`).
    pub fn is_verified(&self) -> bool {
        self.verified.load(Ordering::Acquire)
    }
}

/// The row-operand view of a row-major SMASH matrix: one granule per row
/// line, weighted by the line's occupied-block count (straight out of the
/// [`LineDirectory`], no rank scans). The granule bodies walk each row
/// with a [`LineCursor`] and run the shared [`block_dot`] /
/// [`block_axpy_dense`] per-block routines — exactly the serial SMASH
/// kernel bodies, so the generic drivers stay bit-identical to them.
///
/// # Panics
///
/// The granule methods panic if the matrix is column-major: the kernel
/// stack walks row lines.
impl<T: Scalar> RowRead<T> for SmashMatrix<T> {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn stored_work(&self) -> usize {
        self.nza().len()
    }

    fn granules(&self) -> usize {
        assert_eq!(self.config.layout(), Layout::RowMajor, "row-major SpMV");
        self.rows
    }

    fn granule_weight(&self, g: usize) -> u64 {
        let starts = self.line_block_starts();
        u64::from(starts[g + 1] - starts[g])
    }

    fn granule_row(&self, g: usize) -> usize {
        g
    }

    fn row_into(&self, i: usize, cols: &mut Vec<u32>, vals: &mut Vec<T>) {
        assert_eq!(self.config.layout(), Layout::RowMajor, "row-major rows");
        cols.clear();
        vals.clear();
        let b0 = self.config.block_size();
        let bpl = self.blocks_per_line();
        let nza = self.nza().values();
        for (ordinal, logical) in self.line_cursor(i) {
            let col0 = (logical % bpl) * b0;
            let n = b0.min(self.cols - col0);
            let block = &nza[ordinal * b0..ordinal * b0 + n];
            for (k, v) in block.iter().enumerate() {
                // Decode semantics: explicit padding zeros inside a stored
                // block are not logical entries.
                if !v.is_zero() {
                    cols.push((col0 + k) as u32);
                    vals.push(*v);
                }
            }
        }
    }

    fn spmv_granules(&self, g: std::ops::Range<usize>, x: &[T], y: &mut [T]) {
        assert_eq!(self.config.layout(), Layout::RowMajor, "row-major SpMV");
        let b0 = self.config.block_size();
        let bpl = self.blocks_per_line();
        let cols = self.cols;
        let nza = self.nza().values();
        y.fill(T::ZERO);
        for row in g.clone() {
            for (ordinal, logical) in self.line_cursor(row) {
                let col = (logical % bpl) * b0;
                let block = &nza[ordinal * b0..(ordinal + 1) * b0];
                let n = b0.min(cols - col);
                // The shared per-block body of every SMASH SpMV.
                y[row - g.start] += block_dot(block, x, col, n);
            }
        }
    }

    fn spmm_dense_granules(&self, g: std::ops::Range<usize>, b: &Dense<T>, c: &mut [T]) {
        assert_eq!(self.config.layout(), Layout::RowMajor, "row-major SpMM");
        let n = b.cols();
        let b0 = self.config.block_size();
        let bpl = self.blocks_per_line();
        let cols = self.cols;
        let nza = self.nza().values();
        c.fill(T::ZERO);
        for row in g.clone() {
            let out = &mut c[(row - g.start) * n..(row - g.start + 1) * n];
            for (ordinal, logical) in self.line_cursor(row) {
                let col = (logical % bpl) * b0;
                let block = &nza[ordinal * b0..(ordinal + 1) * b0];
                let nb = b0.min(cols - col);
                // The shared per-block body of every batched SMASH SpMM.
                block_axpy_dense(block, b, col, nb, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smash_matrix::generators;

    fn cfg(ratios: &[u32]) -> SmashConfig {
        SmashConfig::row_major(ratios).unwrap()
    }

    #[test]
    fn paper_fig1_matrix_roundtrips() {
        let mut coo = Coo::new(4, 4);
        for &(r, c, v) in &[
            (0usize, 0usize, 3.2),
            (1, 0, 1.2),
            (1, 2, 4.2),
            (2, 3, 5.1),
            (3, 0, 5.3),
            (3, 1, 3.3),
        ] {
            coo.push(r, c, v);
        }
        let a = Csr::from_coo(&coo);
        for ratios in [&[2u32][..], &[2, 2], &[4, 2, 2], &[1, 4]] {
            let sm = SmashMatrix::encode(&a, cfg(ratios));
            sm.validate().unwrap();
            assert_eq!(sm.decode(), a, "ratios {ratios:?}");
        }
    }

    #[test]
    fn roundtrip_many_shapes_and_configs() {
        let mats = [
            generators::uniform(33, 57, 200, 3),
            generators::banded(64, 64, 4, 400, 4),
            generators::clustered(50, 41, 300, 6, 5),
            generators::block_dense(48, 48, 512, 8, 6),
            generators::power_law(40, 80, 350, 1.1, 7),
        ];
        for a in &mats {
            for ratios in [&[2u32][..], &[4, 4], &[2, 4, 16], &[8, 4, 2]] {
                let sm = SmashMatrix::encode(a, cfg(ratios));
                sm.validate().unwrap();
                assert_eq!(&sm.decode(), a, "ratios {ratios:?}");
            }
        }
    }

    #[test]
    fn col_major_roundtrips() {
        let a = generators::uniform(37, 53, 400, 9);
        let sm = SmashMatrix::encode(&a, SmashConfig::col_major(&[2, 4]).unwrap());
        sm.validate().unwrap();
        assert_eq!(sm.decode(), a);
        assert_eq!(sm.line_count(), 53);
        assert_eq!(sm.line_len(), 37);
    }

    #[test]
    fn blocks_never_straddle_lines() {
        // 5 columns with block size 4: each row pads to 8 elements.
        let a = generators::uniform(16, 5, 30, 11);
        let sm = SmashMatrix::encode(&a, cfg(&[4]));
        assert_eq!(sm.blocks_per_line(), 2);
        for (_, col_start, _) in sm.iter_blocks() {
            assert!(col_start % 4 == 0 && col_start < 8);
        }
        assert_eq!(sm.decode(), a);
    }

    #[test]
    fn nza_holds_whole_blocks_with_padding() {
        let a = generators::uniform(32, 32, 64, 13);
        let sm = SmashMatrix::encode(&a, cfg(&[8]));
        assert_eq!(sm.nza().len() % 8, 0);
        assert!(sm.nza().len() >= a.nnz());
        assert_eq!(sm.nnz(), a.nnz());
    }

    #[test]
    fn zero_matrix_is_tiny() {
        let a = Csr::<f64>::from_coo(&Coo::new(256, 256));
        let sm = SmashMatrix::encode(&a, cfg(&[2, 16, 16]));
        assert_eq!(sm.num_blocks(), 0);
        assert_eq!(sm.nza().len(), 0);
        // Only the top-level bitmap remains: ceil(256*128 / 16 / 16) = 128 bits.
        assert_eq!(sm.storage_bytes(), 16);
        assert_eq!(sm.decode(), a);
    }

    #[test]
    fn block_row_col_matches_decode_positions() {
        let a = generators::clustered(20, 30, 100, 4, 17);
        let sm = SmashMatrix::encode(&a, cfg(&[4, 4]));
        for (logical, (r, c, block)) in sm.hierarchy().blocks().zip(sm.iter_blocks()) {
            assert_eq!(sm.block_row_col(logical), (r, c));
            assert_eq!(block.len(), 4);
        }
    }

    #[test]
    fn line_block_starts_are_consistent() {
        let a = generators::uniform(24, 24, 100, 19);
        let sm = SmashMatrix::encode(&a, cfg(&[2, 4]));
        let starts = sm.line_block_starts();
        assert_eq!(starts.len(), 25);
        assert_eq!(*starts.last().unwrap() as usize, sm.num_blocks());
        // The directory-backed starts must equal the expansion oracle.
        let full = sm.full_bitmap0();
        assert_eq!(starts, sm.line_block_starts_in(&full));
        let bpl = sm.blocks_per_line();
        for line in 0..24 {
            let count = full.rank((line + 1) * bpl) - full.rank(line * bpl);
            assert_eq!((starts[line + 1] - starts[line]) as usize, count);
        }
    }

    #[test]
    fn line_cursor_matches_expansion_oracle() {
        let mats = [
            generators::uniform(33, 57, 200, 3),
            generators::clustered(50, 41, 300, 6, 5),
        ];
        for a in &mats {
            for ratios in [&[2u32][..], &[4, 4], &[2, 4, 16], &[8, 4, 2]] {
                let sm = SmashMatrix::encode(a, cfg(ratios));
                let all: Vec<usize> = sm.full_bitmap0().iter_ones().collect();
                let bpl = sm.blocks_per_line();
                let mut got = Vec::new();
                for line in 0..sm.line_count() {
                    for (ordinal, logical) in sm.line_cursor(line) {
                        assert_eq!(logical / bpl, line, "ratios {ratios:?}");
                        got.push((ordinal, logical));
                    }
                }
                let want: Vec<(usize, usize)> = all.into_iter().enumerate().collect();
                assert_eq!(got, want, "ratios {ratios:?}");
            }
        }
    }

    #[test]
    fn add_matches_csr_add() {
        let a = generators::uniform(48, 56, 300, 41);
        let b = generators::clustered(48, 56, 280, 4, 42);
        for ratios in [&[2u32][..], &[4, 4], &[2, 4, 16]] {
            let sa = SmashMatrix::encode(&a, cfg(ratios));
            let sb = SmashMatrix::encode(&b, cfg(ratios));
            let sum = sa.add(&sb).unwrap();
            sum.validate().unwrap();
            assert_eq!(sum.decode(), a.add(&b).unwrap(), "ratios {ratios:?}");
        }
    }

    #[test]
    fn add_drops_cancelled_blocks() {
        let mut pos = Coo::new(4, 4);
        pos.push(1, 1, 2.5);
        pos.push(2, 3, 1.0);
        let mut neg = Coo::new(4, 4);
        neg.push(1, 1, -2.5);
        let a = SmashMatrix::encode(&Csr::from_coo(&pos), cfg(&[2]));
        let b = SmashMatrix::encode(&Csr::from_coo(&neg), cfg(&[2]));
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.nnz(), 1, "cancelled entry must vanish");
        assert_eq!(sum.num_blocks(), 1, "cancelled block must be dropped");
    }

    #[test]
    fn add_rejects_mismatched_operands() {
        let a = generators::uniform(8, 8, 10, 1);
        let b = generators::uniform(8, 9, 10, 1);
        let sa = SmashMatrix::encode(&a, cfg(&[2]));
        let sb = SmashMatrix::encode(&b, cfg(&[2]));
        assert!(sa.add(&sb).is_err());
        let sb2 = SmashMatrix::encode(&a, cfg(&[4]));
        assert!(sa.add(&sb2).is_err());
        let sb3 = SmashMatrix::encode(&a, SmashConfig::col_major(&[2]).unwrap());
        assert!(sa.add(&sb3).is_err());
    }

    #[test]
    fn higher_b0_lowers_locality_for_scattered_matrices() {
        let a = generators::uniform(128, 128, 400, 23);
        let l2 = SmashMatrix::encode(&a, cfg(&[2])).locality_of_sparsity();
        let l8 = SmashMatrix::encode(&a, cfg(&[8])).locality_of_sparsity();
        assert!(l8 < l2, "l8 {l8} >= l2 {l2}");
    }

    #[test]
    fn compression_ratio_beats_csr_for_clustered_dense() {
        // Dense blocks at ~12% density: SMASH should compress better than
        // CSR's 12 bytes/non-zero (paper Fig. 19, right side).
        let a = generators::block_dense(128, 128, 2048, 8, 29);
        let sm = SmashMatrix::encode(&a, cfg(&[2, 4, 16]));
        let csr_ratio = (a.rows() * a.cols() * 8) as f64 / a.storage_bytes() as f64;
        assert!(
            sm.total_compression_ratio() > csr_ratio,
            "smash {} vs csr {csr_ratio}",
            sm.total_compression_ratio()
        );
    }

    #[test]
    fn csr_beats_smash_for_extremely_sparse() {
        // ~0.0006% density, scattered: CSR stores 12 B/nnz; SMASH pays for
        // the full top-level bitmap plus half-empty 2-element blocks
        // (paper Fig. 19, left side, M1-M4).
        let a = generators::uniform(4096, 4096, 100, 31);
        let sm = SmashMatrix::encode(&a, cfg(&[2, 4, 16]));
        let csr_ratio = (a.rows() * a.cols() * 8) as f64 / a.storage_bytes() as f64;
        assert!(
            sm.total_compression_ratio() < csr_ratio,
            "smash {} vs csr {csr_ratio}",
            sm.total_compression_ratio()
        );
    }
}
