use crate::{Bitmap, SmashError};

/// The SMASH hierarchy of bitmaps (paper §3.2, §4.1, Fig. 4).
///
/// Level 0 is the lowest bitmap: each of its bits covers one NZA block of
/// `ratios[0]` matrix elements. Each bit of level `i > 0` covers `ratios[i]`
/// bits of level `i − 1`. The top level is stored in full; every lower level
/// is stored *compacted* — only the child groups of set parent bits are kept
/// (Fig. 4(b): "we store in memory only the non-zero blocks of the bitmaps
/// and the NZA"), so an all-zero matrix region costs a single clear bit at
/// the top.
///
/// In-order traversal never needs rank/select: child groups appear in
/// storage in exactly the order a depth-first scan visits their parents,
/// which is also how the BMU walks the hierarchy in hardware (§4.2.3).
///
/// # Example
///
/// ```
/// use smash_core::{Bitmap, BitmapHierarchy};
///
/// // 16 blocks, two of them non-zero, reduced 4:1 twice.
/// let mut bm0 = Bitmap::zeros(16);
/// bm0.set(3, true);
/// bm0.set(12, true);
/// let h = BitmapHierarchy::from_level0(&bm0, &[2, 4, 4])?;
/// assert_eq!(h.num_levels(), 3);
/// assert_eq!(h.blocks().collect::<Vec<_>>(), vec![3, 12]);
/// // Compacted level 0 keeps only the two non-empty 4-bit groups.
/// assert_eq!(h.stored_level(0).len(), 8);
/// # Ok::<(), smash_core::SmashError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitmapHierarchy {
    /// Per-level compression ratios, level 0 first (`ratios[0]` is the
    /// element ratio of Bitmap-0; `ratios[i>0]` reduce bitmap lengths).
    ratios: Vec<u32>,
    /// Stored bitmaps, level 0 first. The last is full, the rest compacted.
    levels: Vec<Bitmap>,
    /// Logical (uncompacted) bit count of each level.
    logical_bits: Vec<usize>,
}

impl BitmapHierarchy {
    /// Builds a hierarchy from the full Bitmap-0 and the configured ratios.
    ///
    /// `ratios[0]` is recorded (it defines the meaning of a level-0 bit) but
    /// only `ratios[1..]` drive the reductions.
    ///
    /// # Errors
    ///
    /// Returns [`SmashError::NoLevels`] if `ratios` is empty, or
    /// [`SmashError::InvalidRatio`] if an upper-level ratio is `< 2`.
    pub fn from_level0(bm0: &Bitmap, ratios: &[u32]) -> Result<Self, SmashError> {
        if ratios.is_empty() {
            return Err(SmashError::NoLevels);
        }
        for (level, &r) in ratios.iter().enumerate().skip(1) {
            if r < 2 {
                return Err(SmashError::InvalidRatio { level, ratio: r });
            }
        }
        // Build the full bitmap of every level bottom-up, folding whole
        // words instead of probing bit ranges.
        let mut full: Vec<Bitmap> = Vec::with_capacity(ratios.len());
        full.push(bm0.clone());
        for &r in &ratios[1..] {
            let prev = full.last().unwrap();
            full.push(reduce_level(prev, r as usize));
        }
        let logical_bits: Vec<usize> = full.iter().map(Bitmap::len).collect();

        // Compact every level below the top: keep only groups whose parent
        // bit is set, each padded to exactly `ratios[i + 1]` bits.
        let top = full.len() - 1;
        let mut levels: Vec<Bitmap> = Vec::with_capacity(full.len());
        for i in 0..top {
            let g = ratios[i + 1] as usize;
            let mut compact = Bitmap::new();
            for j in full[i + 1].iter_ones() {
                let lo = j * g;
                let hi = ((j + 1) * g).min(full[i].len());
                compact.extend_from_range(&full[i], lo, hi);
                compact.extend_with(g - (hi - lo), false);
            }
            levels.push(compact);
        }
        levels.push(full[top].clone());

        Ok(BitmapHierarchy {
            ratios: ratios.to_vec(),
            levels,
            logical_bits,
        })
    }

    /// Number of bitmap levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Per-level compression ratios, level 0 first.
    pub fn ratios(&self) -> &[u32] {
        &self.ratios
    }

    /// The *stored* (compacted, except the top) bitmap of a level.
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_levels()`.
    pub fn stored_level(&self, level: usize) -> &Bitmap {
        &self.levels[level]
    }

    /// Logical (uncompacted) bit count of a level.
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_levels()`.
    pub fn logical_bits(&self, level: usize) -> usize {
        self.logical_bits[level]
    }

    /// Number of set level-0 bits, i.e. the number of NZA blocks.
    pub fn num_blocks(&self) -> usize {
        self.levels[0].count_ones()
    }

    /// Total stored bits across all levels — the bitmap side of the Fig. 19
    /// storage accounting.
    pub fn storage_bits(&self) -> usize {
        self.levels.iter().map(Bitmap::storage_bits).sum()
    }

    /// Reconstructs the full (uncompacted) bitmap of a level.
    ///
    /// Linear in the logical size of the level. This is **not** a hot
    /// path any more: kernels address lines through
    /// [`LineDirectory`](crate::LineDirectory) in O(1). The expansion
    /// remains as the property-test oracle for the directory and for
    /// format conversions that genuinely need the dense bitmap.
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_levels()`.
    pub fn expand_full(&self, level: usize) -> Bitmap {
        assert!(level < self.num_levels(), "level out of range");
        let top = self.num_levels() - 1;
        if level == top {
            return self.levels[top].clone();
        }
        // Expand parent first, then scatter this level's stored groups by
        // whole words (OR into place, no per-bit get/set).
        let parent_full = self.expand_full(level + 1);
        let g = self.ratios[level + 1] as usize;
        let mut full = Bitmap::zeros(self.logical_bits[level]);
        for (k, j) in parent_full.iter_ones().enumerate() {
            let storage_base = k * g;
            let logical_base = j * g;
            let n = g.min(self.logical_bits[level] - logical_base);
            let mut done = 0;
            while done < n {
                let take = (n - done).min(64);
                let word = self.levels[level].word_at(storage_base + done);
                full.or_bits_at(logical_base + done, word, take);
                done += take;
            }
        }
        full
    }

    /// Iterates over the logical level-0 indices of set bits, in increasing
    /// order. The `n`-th yielded index owns NZA block `n`.
    pub fn blocks(&self) -> Blocks<'_> {
        let top = self.num_levels() - 1;
        Blocks {
            hierarchy: self,
            consumed: vec![0; self.num_levels()],
            stack: vec![Frame {
                level: top,
                logical_base: 0,
                storage_base: 0,
                pos: 0,
                group_len: self.levels[top].len(),
            }],
        }
    }

    /// Calls `f(ordinal, logical_level0_index)` for every set level-0 bit in
    /// order. Equivalent to `self.blocks().enumerate()` but avoids iterator
    /// state, which keeps tight encode/decode loops fast.
    pub fn for_each_block(&self, mut f: impl FnMut(usize, usize)) {
        for (ordinal, logical) in self.blocks().enumerate() {
            f(ordinal, logical);
        }
    }

    /// Iterates over *every* set bit the depth-first scan encounters, at
    /// every level, as [`Visit`] records carrying both the logical and the
    /// storage position. Level-0 visits appear in the same order as
    /// [`BitmapHierarchy::blocks`].
    ///
    /// This is the exact work a software scanner (paper §4.4) performs, so
    /// the instrumented software-only SMASH kernels replay it to charge
    /// word loads, count-trailing-zeros and masking operations.
    pub fn visits(&self) -> Visits<'_> {
        let top = self.num_levels() - 1;
        Visits {
            hierarchy: self,
            consumed: vec![0; self.num_levels()],
            stack: vec![Frame {
                level: top,
                logical_base: 0,
                storage_base: 0,
                pos: 0,
                group_len: self.levels[top].len(),
            }],
        }
    }

    /// Checks the structural invariants of the stored representation.
    ///
    /// # Errors
    ///
    /// Returns [`SmashError::Inconsistent`] describing the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), SmashError> {
        let top = self.num_levels() - 1;
        if self.levels.len() != self.ratios.len() || self.levels.len() != self.logical_bits.len() {
            return Err(SmashError::Inconsistent(
                "levels, ratios and logical_bits lengths differ".into(),
            ));
        }
        if self.levels[top].len() != self.logical_bits[top] {
            return Err(SmashError::Inconsistent(
                "top level must be stored in full".into(),
            ));
        }
        for i in 0..top {
            let g = self.ratios[i + 1] as usize;
            let parents = self.levels[i + 1].count_ones();
            if self.levels[i].len() != parents * g {
                return Err(SmashError::Inconsistent(format!(
                    "level {i} stores {} bits, expected {} groups of {g}",
                    self.levels[i].len(),
                    parents
                )));
            }
            for k in 0..parents {
                if !self.levels[i].any_in_range(k * g, (k + 1) * g) {
                    return Err(SmashError::Inconsistent(format!(
                        "level {i} group {k} is all-zero but its parent bit is set"
                    )));
                }
            }
            // Logical chain must match the ratio reduction.
            let expect = self.logical_bits[i].div_ceil(g).max(1);
            if self.logical_bits[i + 1] != expect {
                return Err(SmashError::Inconsistent(format!(
                    "level {} logical length {} != ceil({} / {g})",
                    i + 1,
                    self.logical_bits[i + 1],
                    self.logical_bits[i]
                )));
            }
        }
        Ok(())
    }
}

/// OR-folds `r` child bits per parent bit, word-wise: whole zero words
/// are skipped, set bits are found with count-trailing-zeros, and once a
/// parent is marked the scan jumps straight past its group. O(words +
/// marked parents) instead of O(parents · words-per-group).
fn reduce_level(prev: &Bitmap, r: usize) -> Bitmap {
    let len = prev.len().div_ceil(r).max(1);
    let mut next = Bitmap::zeros(len);
    if r.is_multiple_of(64) {
        // Word-aligned groups: a parent bit is the OR of r/64 words.
        for (j, chunk) in prev.words().chunks(r / 64).enumerate() {
            if chunk.iter().any(|&w| w != 0) {
                next.set(j, true);
            }
        }
        return next;
    }
    for (wi, &word) in prev.words().iter().enumerate() {
        let mut m = word;
        while m != 0 {
            let bit = wi * 64 + m.trailing_zeros() as usize;
            let parent = bit / r;
            next.set(parent, true);
            // Skip the rest of this parent's group within the word.
            let group_end = (parent + 1) * r;
            if group_end >= (wi + 1) * 64 {
                break;
            }
            m &= u64::MAX << (group_end % 64);
        }
    }
    next
}

/// One in-flight group scan of the depth-first traversal.
#[derive(Debug, Clone)]
struct Frame {
    level: usize,
    /// Logical index of the group's first bit at this level.
    logical_base: usize,
    /// Storage index of the group's first bit in the compacted bitmap.
    storage_base: usize,
    /// Next in-group bit offset to examine.
    pos: usize,
    /// Group length in bits.
    group_len: usize,
}

/// Depth-first iterator over set level-0 bits, produced by
/// [`BitmapHierarchy::blocks`].
///
/// This mirrors the BMU scan of paper §4.2.3: "every time a set bit is
/// encountered at any bitmap level, we save that bit's index within the
/// bitmap and then traverse the lower-level bitmap associated with that set
/// bit".
#[derive(Debug, Clone)]
pub struct Blocks<'a> {
    hierarchy: &'a BitmapHierarchy,
    /// Groups consumed so far per level (cursor into compacted storage).
    consumed: Vec<usize>,
    stack: Vec<Frame>,
}

impl Iterator for Blocks<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            let frame = self.stack.last_mut()?;
            let bitmap = &self.hierarchy.levels[frame.level];
            let from = frame.storage_base + frame.pos;
            let limit = frame.storage_base + frame.group_len;
            let found = bitmap.next_one(from).filter(|&i| i < limit);
            match found {
                None => {
                    self.stack.pop();
                }
                Some(idx) => {
                    let offset = idx - frame.storage_base;
                    frame.pos = offset + 1;
                    let logical = frame.logical_base + offset;
                    if frame.level == 0 {
                        return Some(logical);
                    }
                    let child = frame.level - 1;
                    let g = self.hierarchy.ratios[frame.level - 1 + 1] as usize;
                    let storage_base = self.consumed[child] * g;
                    self.consumed[child] += 1;
                    self.stack.push(Frame {
                        level: child,
                        logical_base: logical * g,
                        storage_base,
                        pos: 0,
                        group_len: g,
                    });
                }
            }
        }
    }
}

/// One set bit encountered during a depth-first scan, produced by
/// [`BitmapHierarchy::visits`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Visit {
    /// Bitmap level of the set bit (0 = Bitmap-0).
    pub level: usize,
    /// Logical (uncompacted) bit index within the level.
    pub logical: usize,
    /// Storage bit index within the level's stored (compacted) bitmap —
    /// what a software scanner actually reads.
    pub storage: usize,
}

/// Iterator over every set bit the depth-first scan encounters (all
/// levels), produced by [`BitmapHierarchy::visits`].
#[derive(Debug, Clone)]
pub struct Visits<'a> {
    hierarchy: &'a BitmapHierarchy,
    consumed: Vec<usize>,
    stack: Vec<Frame>,
}

impl Iterator for Visits<'_> {
    type Item = Visit;

    fn next(&mut self) -> Option<Visit> {
        loop {
            let frame = self.stack.last_mut()?;
            let bitmap = &self.hierarchy.levels[frame.level];
            let from = frame.storage_base + frame.pos;
            let limit = frame.storage_base + frame.group_len;
            let found = bitmap.next_one(from).filter(|&i| i < limit);
            match found {
                None => {
                    self.stack.pop();
                }
                Some(idx) => {
                    let level = frame.level;
                    let offset = idx - frame.storage_base;
                    frame.pos = offset + 1;
                    let logical = frame.logical_base + offset;
                    if level > 0 {
                        let child = level - 1;
                        let g = self.hierarchy.ratios[level] as usize;
                        let storage_base = self.consumed[child] * g;
                        self.consumed[child] += 1;
                        self.stack.push(Frame {
                            level: child,
                            logical_base: logical * g,
                            storage_base,
                            pos: 0,
                            group_len: g,
                        });
                    }
                    return Some(Visit {
                        level,
                        logical,
                        storage: idx,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bm(bits: &[usize], len: usize) -> Bitmap {
        let mut b = Bitmap::zeros(len);
        for &i in bits {
            b.set(i, true);
        }
        b
    }

    #[test]
    fn single_level_is_stored_full() {
        let bm0 = bm(&[1, 5, 9], 12);
        let h = BitmapHierarchy::from_level0(&bm0, &[2]).unwrap();
        assert_eq!(h.num_levels(), 1);
        assert_eq!(h.stored_level(0), &bm0);
        assert_eq!(h.blocks().collect::<Vec<_>>(), vec![1, 5, 9]);
        h.validate().unwrap();
    }

    #[test]
    fn two_levels_compact_lower() {
        // 16 level-0 bits, groups of 4. Set bits in groups 0 and 3 only.
        let bm0 = bm(&[0, 2, 13], 16);
        let h = BitmapHierarchy::from_level0(&bm0, &[2, 4]).unwrap();
        assert_eq!(h.num_levels(), 2);
        // Top: groups 0 and 3 occupied.
        assert_eq!(
            h.stored_level(1).iter_ones().collect::<Vec<_>>(),
            vec![0, 3]
        );
        // Compacted level 0: two groups of 4 bits: [1,0,1,0] and [0,1,0,0].
        assert_eq!(h.stored_level(0).len(), 8);
        assert_eq!(
            h.stored_level(0).iter_ones().collect::<Vec<_>>(),
            vec![0, 2, 5]
        );
        assert_eq!(h.blocks().collect::<Vec<_>>(), vec![0, 2, 13]);
        h.validate().unwrap();
    }

    #[test]
    fn three_levels_match_paper_shape() {
        // Mirrors Fig. 4: Bitmap-1 reduces 4 level-0 bits per bit,
        // Bitmap-2 reduces 2 level-1 bits per bit.
        let bm0 = bm(&[0, 1, 2, 3, 12], 16);
        let h = BitmapHierarchy::from_level0(&bm0, &[4, 4, 2]).unwrap();
        assert_eq!(h.logical_bits(0), 16);
        assert_eq!(h.logical_bits(1), 4);
        assert_eq!(h.logical_bits(2), 2);
        assert_eq!(h.blocks().collect::<Vec<_>>(), vec![0, 1, 2, 3, 12]);
        h.validate().unwrap();
    }

    #[test]
    fn expand_full_roundtrips() {
        let bm0 = bm(&[3, 17, 40, 41, 63], 64);
        for ratios in [&[2u32, 4][..], &[2, 4, 4], &[2, 8, 2], &[2, 2, 2, 2]] {
            let h = BitmapHierarchy::from_level0(&bm0, ratios).unwrap();
            assert_eq!(h.expand_full(0), bm0, "{ratios:?}");
            h.validate().unwrap();
        }
    }

    #[test]
    fn all_zero_matrix_costs_top_bits_only() {
        let bm0 = Bitmap::zeros(4096);
        let h = BitmapHierarchy::from_level0(&bm0, &[2, 8, 8]).unwrap();
        // Lower levels store nothing; top stores ceil(4096/8/8) = 64 bits.
        assert_eq!(h.stored_level(0).len(), 0);
        assert_eq!(h.stored_level(1).len(), 0);
        assert_eq!(h.stored_level(2).len(), 64);
        assert_eq!(h.blocks().count(), 0);
        h.validate().unwrap();
    }

    #[test]
    fn dense_bitmap_stores_everything() {
        let bm0 = bm(&(0..32).collect::<Vec<_>>(), 32);
        let h = BitmapHierarchy::from_level0(&bm0, &[2, 4, 4]).unwrap();
        assert_eq!(h.stored_level(0).len(), 32);
        assert_eq!(h.stored_level(0).count_ones(), 32);
        assert_eq!(h.blocks().count(), 32);
    }

    #[test]
    fn blocks_are_increasing_and_complete() {
        // Pseudo-random pattern.
        let bits: Vec<usize> = (0..500)
            .filter(|i| (i * 2654435761usize).is_multiple_of(7))
            .collect();
        let bm0 = bm(&bits, 500);
        let h = BitmapHierarchy::from_level0(&bm0, &[2, 4, 16]).unwrap();
        let got: Vec<usize> = h.blocks().collect();
        assert_eq!(got, bits);
        assert_eq!(h.num_blocks(), bits.len());
    }

    #[test]
    fn ragged_tail_groups_are_padded() {
        // 10 bits with ratio 4: last group is logically 2 bits.
        let bm0 = bm(&[9], 10);
        let h = BitmapHierarchy::from_level0(&bm0, &[2, 4]).unwrap();
        assert_eq!(h.logical_bits(1), 3);
        // The single stored group is padded to 4 bits.
        assert_eq!(h.stored_level(0).len(), 4);
        assert_eq!(h.blocks().collect::<Vec<_>>(), vec![9]);
        h.validate().unwrap();
    }

    #[test]
    fn storage_shrinks_for_sparse_inputs() {
        let sparse = {
            let mut b = Bitmap::zeros(1 << 16);
            b.set(0, true);
            b.set(60_000, true);
            b
        };
        let flat = BitmapHierarchy::from_level0(&sparse, &[2]).unwrap();
        let deep = BitmapHierarchy::from_level0(&sparse, &[2, 16, 16]).unwrap();
        assert!(deep.storage_bits() < flat.storage_bits() / 10);
    }

    #[test]
    fn rejects_invalid_ratios() {
        let bm0 = Bitmap::zeros(8);
        assert!(BitmapHierarchy::from_level0(&bm0, &[]).is_err());
        assert!(BitmapHierarchy::from_level0(&bm0, &[2, 1]).is_err());
    }

    #[test]
    fn visits_cover_all_levels_in_dfs_order() {
        let bm0 = bm(&[0, 2, 13], 16);
        let h = BitmapHierarchy::from_level0(&bm0, &[2, 4]).unwrap();
        let visits: Vec<(usize, usize)> = h.visits().map(|v| (v.level, v.logical)).collect();
        // Top bit 0 -> children 0, 2; top bit 3 -> child 13.
        assert_eq!(visits, vec![(1, 0), (0, 0), (0, 2), (1, 3), (0, 13)]);
    }

    #[test]
    fn level0_visits_match_blocks() {
        let bits: Vec<usize> = (0..300).filter(|i| i % 17 == 0).collect();
        let h = BitmapHierarchy::from_level0(&bm(&bits, 300), &[2, 4, 4]).unwrap();
        let from_visits: Vec<usize> = h
            .visits()
            .filter(|v| v.level == 0)
            .map(|v| v.logical)
            .collect();
        assert_eq!(from_visits, h.blocks().collect::<Vec<_>>());
    }

    #[test]
    fn visit_storage_positions_are_monotone_per_level() {
        let bits: Vec<usize> = (0..500).filter(|i| i % 7 == 3).collect();
        let h = BitmapHierarchy::from_level0(&bm(&bits, 500), &[2, 8, 4]).unwrap();
        let mut last = [0usize; 3];
        for v in h.visits() {
            assert!(
                v.storage >= last[v.level],
                "level {} went backwards",
                v.level
            );
            last[v.level] = v.storage;
        }
    }

    #[test]
    fn reduce_level_matches_naive_fold() {
        // Adversarial pattern across word and group boundaries.
        let bits: Vec<usize> = (0..700).filter(|i| (i * 31) % 11 < 3).collect();
        let prev = bm(&bits, 700);
        for r in [2usize, 3, 7, 16, 63, 64, 65, 128, 2048] {
            let got = reduce_level(&prev, r);
            let len = prev.len().div_ceil(r).max(1);
            let mut want = Bitmap::zeros(len);
            for j in 0..len {
                let lo = j * r;
                let hi = ((j + 1) * r).min(prev.len());
                if lo < hi && prev.any_in_range(lo, hi) {
                    want.set(j, true);
                }
            }
            assert_eq!(got, want, "ratio {r}");
        }
        // Empty input still yields the single clear top bit.
        assert_eq!(reduce_level(&Bitmap::zeros(0), 4).len(), 1);
    }

    #[test]
    fn for_each_block_matches_iterator() {
        let bm0 = bm(&[2, 3, 11], 16);
        let h = BitmapHierarchy::from_level0(&bm0, &[2, 4]).unwrap();
        let mut pairs = Vec::new();
        h.for_each_block(|ord, idx| pairs.push((ord, idx)));
        assert_eq!(pairs, vec![(0, 2), (1, 3), (2, 11)]);
    }
}
