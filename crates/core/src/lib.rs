//! The SMASH hierarchical-bitmap sparse-matrix encoding — the software half
//! of the paper's contribution (§3.2, §4.1).
//!
//! A sparse matrix is compressed into two structures:
//!
//! * a [`BitmapHierarchy`]: Bitmap-0 marks which fixed-size element blocks
//!   contain non-zeros; each higher bitmap summarizes groups of bits of the
//!   level below with a configurable compression ratio. Only the top level
//!   is stored in full — lower levels keep just the child groups of set
//!   parent bits (Fig. 4(b));
//! * an [`Nza`] (Non-Zero Values Array) holding one block of values per set
//!   Bitmap-0 bit, including any explicit zeros inside a block.
//!
//! [`SmashMatrix`] ties both together with the matrix geometry and the
//! [`SmashConfig`] (per-level ratios + row/column-major [`Layout`]), and
//! carries a [`LineDirectory`] — per-level [`RankIndex`]es plus per-line
//! cursors — so any row of the compressed form is reachable in O(1)
//! without expanding the bitmaps (the software analogue of the paper's
//! BMU indexing).
//!
//! # Example
//!
//! ```
//! use smash_core::{SmashConfig, SmashMatrix};
//! use smash_matrix::generators;
//!
//! // Compress a banded matrix with the paper's default "16.4.2" hierarchy.
//! let a = generators::banded(128, 128, 4, 900, 7);
//! let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&[2, 4, 16])?);
//!
//! assert_eq!(sm.decode(), a); // lossless
//! // Banded non-zeros cluster, so few NZA slots are padding zeros:
//! assert!(sm.locality_of_sparsity() > 0.5);
//! # Ok::<(), smash_core::SmashError>(())
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod bitmap;
mod config;
mod directory;
mod dynamic;
mod error;
mod hierarchy;
mod nza;
mod rank_select;
mod smash_matrix;
pub mod storage;

pub use bitmap::{Bitmap, Ones};
pub use config::{Layout, SmashConfig, MAX_LEVELS, MAX_RATIO};
pub use directory::{LineCursor, LineDirectory};
pub use dynamic::{merge_row, Delta, DeltaOverlay, DynamicBase, DynamicMatrix};
pub use error::SmashError;
pub use hierarchy::{BitmapHierarchy, Blocks, Visit, Visits};
pub use nza::Nza;
pub use rank_select::{RankIndex, SUPERBLOCK_BITS};
pub use smash_matrix::{
    block_axpy_dense, block_dot, for_each_line_block, for_each_nz_block, SmashMatrix,
};
