//! Succinct rank/select acceleration for [`Bitmap`] — the software
//! analogue of the paper's BMU.
//!
//! The BMU (paper §4.2) is, at its core, a hardware rank/select engine
//! over the stored bitmap hierarchy: it finds set bits and counts them
//! without ever materializing the uncompacted bitmaps. [`RankIndex`]
//! gives the software kernels the same primitive: 512-bit superblock
//! cumulative popcounts make `rank` O(1) (at most 8 word popcounts),
//! and sampled select hints plus a bounded binary search make `select`
//! near-O(1).
//!
//! The index is *positional metadata only* — it does not own the bitmap.
//! Every query takes the bitmap it was built from; mutating that bitmap
//! invalidates the index (rebuild it after any `set`/`push`).

use crate::Bitmap;

/// Bits covered by one superblock of cumulative popcounts (8 words).
pub const SUPERBLOCK_BITS: usize = 512;

/// One select hint is sampled for every `SELECT_SAMPLE` set bits.
const SELECT_SAMPLE: usize = 512;

/// O(1) `rank` / near-O(1) `select` index over a [`Bitmap`].
///
/// Layout: one cumulative popcount per 512-bit superblock
/// (`bits / 512 + 1` words of metadata) plus one superblock hint per 512
/// set bits — a few percent of the bitmap, never linear in the matrix.
///
/// # Example
///
/// ```
/// use smash_core::{Bitmap, RankIndex};
///
/// let mut b = Bitmap::zeros(2048);
/// for i in (0..2048).step_by(3) {
///     b.set(i, true);
/// }
/// let idx = RankIndex::build(&b);
/// assert_eq!(idx.rank(&b, 300), b.rank(300)); // == the O(n) scan
/// assert_eq!(idx.select(&b, 10), Some(30));   // position of the 11th one
/// assert_eq!(idx.ones(), b.count_ones());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankIndex {
    /// Length of the indexed bitmap (for pairing checks).
    len: usize,
    /// Cumulative set-bit count before each superblock; one trailing
    /// entry holds the total.
    super_ranks: Vec<u64>,
    /// For every `SELECT_SAMPLE`-th set bit, the superblock containing it.
    select_hints: Vec<u32>,
}

impl RankIndex {
    /// Builds the index in one pass over the bitmap's words.
    pub fn build(bm: &Bitmap) -> RankIndex {
        let words = bm.words();
        let n_super = words.len().div_ceil(SUPERBLOCK_BITS / 64);
        let mut super_ranks = Vec::with_capacity(n_super + 1);
        let mut select_hints = Vec::new();
        let mut count = 0u64;
        super_ranks.push(0);
        for (sb, chunk) in words.chunks(SUPERBLOCK_BITS / 64).enumerate() {
            let c: u64 = chunk.iter().map(|w| u64::from(w.count_ones())).sum();
            // Every sample threshold crossed inside this superblock points
            // here; thresholds below `count` were recorded earlier.
            while ((select_hints.len() * SELECT_SAMPLE) as u64) < count + c {
                select_hints.push(sb as u32);
            }
            count += c;
            super_ranks.push(count);
        }
        RankIndex {
            len: bm.len(),
            super_ranks,
            select_hints,
        }
    }

    /// Total set bits in the indexed bitmap.
    pub fn ones(&self) -> usize {
        *self.super_ranks.last().expect("always one entry") as usize
    }

    /// Length of the bitmap this index was built from.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the indexed bitmap had zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Metadata footprint in bytes (what an indexed kernel charges as
    /// auxiliary memory).
    pub fn aux_bytes(&self) -> usize {
        self.super_ranks.len() * std::mem::size_of::<u64>()
            + self.select_hints.len() * std::mem::size_of::<u32>()
    }

    /// Number of set bits in `[0, idx)` — O(1): one superblock lookup plus
    /// at most 8 word popcounts.
    ///
    /// `bm` must be the bitmap the index was built from.
    ///
    /// # Panics
    ///
    /// Panics if `idx > bm.len()` or the bitmap length disagrees with the
    /// index.
    pub fn rank(&self, bm: &Bitmap, idx: usize) -> usize {
        assert_eq!(bm.len(), self.len, "index built from a different bitmap");
        assert!(
            idx <= self.len,
            "rank index {idx} out of range {}",
            self.len
        );
        let sb = idx / SUPERBLOCK_BITS;
        let mut count = self.super_ranks[sb] as usize;
        let words = bm.words();
        let full_words = idx / 64;
        for w in &words[sb * (SUPERBLOCK_BITS / 64)..full_words] {
            count += w.count_ones() as usize;
        }
        let rem = idx % 64;
        if rem != 0 {
            count += (words[full_words] & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        count
    }

    /// Position of the `k`-th (0-based) set bit, or `None` if fewer than
    /// `k + 1` bits are set — near-O(1): a sampled hint bounds a binary
    /// search over superblocks, then at most 8 word popcounts.
    ///
    /// `bm` must be the bitmap the index was built from.
    ///
    /// # Panics
    ///
    /// Panics if the bitmap length disagrees with the index.
    pub fn select(&self, bm: &Bitmap, k: usize) -> Option<usize> {
        assert_eq!(bm.len(), self.len, "index built from a different bitmap");
        if k >= self.ones() {
            return None;
        }
        let k64 = k as u64;
        // The hint gives the superblock of the (k / SAMPLE * SAMPLE)-th
        // one; the next hint (or the end) bounds the search window.
        let h = k / SELECT_SAMPLE;
        let lo_sb = self.select_hints[h] as usize;
        let hi_sb = self
            .select_hints
            .get(h + 1)
            .map(|&s| s as usize + 1)
            .unwrap_or(self.super_ranks.len() - 1);
        // Largest superblock whose cumulative rank is <= k.
        let window = &self.super_ranks[lo_sb..hi_sb + 1];
        let sb = lo_sb + window.partition_point(|&r| r <= k64) - 1;
        let mut remaining = k - self.super_ranks[sb] as usize;
        let words = bm.words();
        let w_lo = sb * (SUPERBLOCK_BITS / 64);
        for (wi, &word) in words.iter().enumerate().skip(w_lo) {
            let c = word.count_ones() as usize;
            if remaining < c {
                // Select within the word: clear the lowest `remaining` set
                // bits, then the answer is the next trailing one.
                let mut w = word;
                for _ in 0..remaining {
                    w &= w - 1;
                }
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
            remaining -= c;
        }
        unreachable!("k < ones() guarantees the scan finds the bit");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_select(bm: &Bitmap, k: usize) -> Option<usize> {
        bm.iter_ones().nth(k)
    }

    fn patterns() -> Vec<Bitmap> {
        let mut out = vec![
            Bitmap::zeros(0),
            Bitmap::zeros(1),
            Bitmap::zeros(5000),
            Bitmap::from_bools(&[true]),
        ];
        // Dense, sparse, clustered and boundary-heavy patterns.
        for (len, step) in [
            (64usize, 1usize),
            (65, 2),
            (4096, 1),
            (4099, 7),
            (20_000, 513),
        ] {
            let mut b = Bitmap::zeros(len);
            for i in (0..len).step_by(step) {
                b.set(i, true);
            }
            out.push(b);
        }
        let mut tail = Bitmap::zeros(3000);
        tail.set(2999, true);
        out.push(tail);
        out
    }

    #[test]
    fn rank_matches_scan_everywhere() {
        for bm in patterns() {
            let idx = RankIndex::build(&bm);
            assert_eq!(idx.ones(), bm.count_ones());
            for i in (0..=bm.len()).step_by(1.max(bm.len() / 97)) {
                assert_eq!(idx.rank(&bm, i), bm.rank(i), "rank({i}) len {}", bm.len());
            }
            assert_eq!(idx.rank(&bm, bm.len()), bm.count_ones());
        }
    }

    #[test]
    fn select_matches_naive_everywhere() {
        for bm in patterns() {
            let idx = RankIndex::build(&bm);
            let ones = idx.ones();
            for k in (0..ones).step_by(1.max(ones / 97)) {
                assert_eq!(idx.select(&bm, k), naive_select(&bm, k), "select({k})");
            }
            if ones > 0 {
                assert_eq!(idx.select(&bm, ones - 1), naive_select(&bm, ones - 1));
            }
            assert_eq!(idx.select(&bm, ones), None);
            assert_eq!(idx.select(&bm, ones + 10), None);
        }
    }

    #[test]
    fn rank_select_are_inverse() {
        let mut bm = Bitmap::zeros(10_000);
        for i in (0..10_000).step_by(13) {
            bm.set(i, true);
        }
        let idx = RankIndex::build(&bm);
        for k in 0..idx.ones() {
            let pos = idx.select(&bm, k).unwrap();
            assert_eq!(idx.rank(&bm, pos), k);
            assert!(bm.get(pos));
        }
    }

    #[test]
    fn aux_bytes_are_sublinear() {
        let bm = Bitmap::zeros(1 << 20);
        let idx = RankIndex::build(&bm);
        // Dense bitmap: 1 MiB of bits, ~16 KiB of superblock counts.
        assert!(idx.aux_bytes() < (1 << 20) / 8 / 4);
    }

    #[test]
    #[should_panic(expected = "different bitmap")]
    fn mismatched_bitmap_is_rejected() {
        let idx = RankIndex::build(&Bitmap::zeros(10));
        idx.rank(&Bitmap::zeros(11), 0);
    }
}
