use smash_matrix::Scalar;

/// Non-Zero Values Array: the block-granular value store of the SMASH
/// encoding (paper §3.2, Fig. 4).
///
/// Every set bit of Bitmap-0 owns one block of `block_size` consecutive
/// values. Blocks that cover a region with fewer than `block_size` non-zeros
/// contain explicit zeros — the storage/compute trade-off controlled by the
/// Bitmap-0 compression ratio (§4.1.1).
///
/// # Example
///
/// ```
/// use smash_core::Nza;
///
/// let nza = Nza::from_values(4, vec![1.0, 0.0, 0.0, 2.0]);
/// assert_eq!(nza.num_blocks(), 1);
/// assert_eq!(nza.block(0), &[1.0, 0.0, 0.0, 2.0]);
/// assert_eq!(nza.zero_fraction(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Nza<T> {
    block_size: usize,
    values: Vec<T>,
}

impl<T: Scalar> Nza<T> {
    /// Creates an empty NZA with the given block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_size == 0`.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be non-zero");
        Nza {
            block_size,
            values: Vec::new(),
        }
    }

    /// Wraps an existing value vector.
    ///
    /// # Panics
    ///
    /// Panics if `block_size == 0` or `values.len()` is not a multiple of
    /// `block_size`.
    pub fn from_values(block_size: usize, values: Vec<T>) -> Self {
        assert!(block_size > 0, "block size must be non-zero");
        assert_eq!(
            values.len() % block_size,
            0,
            "value count {} is not a whole number of {}-element blocks",
            values.len(),
            block_size
        );
        Nza { block_size, values }
    }

    /// Appends one block.
    ///
    /// # Panics
    ///
    /// Panics if `block.len() != block_size`.
    pub fn push_block(&mut self, block: &[T]) {
        assert_eq!(block.len(), self.block_size, "block length mismatch");
        self.values.extend_from_slice(block);
    }

    /// Elements per block (the Bitmap-0 compression ratio).
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of stored blocks.
    pub fn num_blocks(&self) -> usize {
        self.values.len() / self.block_size
    }

    /// Total stored values (including explicit zeros).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no blocks are stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Block `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_blocks()`.
    pub fn block(&self, i: usize) -> &[T] {
        assert!(i < self.num_blocks(), "block {i} out of range");
        &self.values[i * self.block_size..(i + 1) * self.block_size]
    }

    /// All stored values, block-major.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Number of non-zero values actually stored.
    pub fn nnz(&self) -> usize {
        self.values.iter().filter(|v| !v.is_zero()).count()
    }

    /// Fraction of stored values that are explicit zeros (wasted storage and
    /// wasted multiplies; 0.0 at 100 % locality of sparsity).
    pub fn zero_fraction(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            1.0 - self.nnz() as f64 / self.values.len() as f64
        }
    }

    /// Storage footprint in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_blocks() {
        let mut nza = Nza::<f64>::new(2);
        nza.push_block(&[1.0, 2.0]);
        nza.push_block(&[0.0, 3.0]);
        assert_eq!(nza.num_blocks(), 2);
        assert_eq!(nza.block(1), &[0.0, 3.0]);
        assert_eq!(nza.len(), 4);
        assert_eq!(nza.nnz(), 3);
        assert_eq!(nza.zero_fraction(), 0.25);
    }

    #[test]
    fn storage_counts_padding_zeros() {
        let nza = Nza::from_values(4, vec![1.0f64, 0.0, 0.0, 0.0]);
        assert_eq!(nza.storage_bytes(), 32);
        assert_eq!(nza.zero_fraction(), 0.75);
    }

    #[test]
    fn empty_nza() {
        let nza = Nza::<f64>::new(8);
        assert!(nza.is_empty());
        assert_eq!(nza.zero_fraction(), 0.0);
        assert_eq!(nza.num_blocks(), 0);
    }

    #[test]
    #[should_panic(expected = "block length mismatch")]
    fn wrong_block_length_panics() {
        Nza::<f64>::new(4).push_block(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_values_panic() {
        Nza::from_values(4, vec![1.0f64; 6]);
    }
}
