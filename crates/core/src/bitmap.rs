//! Flat bit vector with word-level scanning.
//!
//! [`Bitmap`] is the building block of the SMASH hierarchy. It stores bits
//! in 64-bit words and exposes the operations the software-only scanner of
//! paper §4.4 performs: word loads, count-trailing-zeros to find the next
//! set bit, and AND-masking to clear it.

/// Growable bit vector backed by `u64` words.
///
/// # Example
///
/// ```
/// use smash_core::Bitmap;
///
/// let mut b = Bitmap::zeros(130);
/// b.set(0, true);
/// b.set(129, true);
/// assert_eq!(b.count_ones(), 2);
/// assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 129]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bitmap {
    len: usize,
    words: Vec<u64>,
}

impl Bitmap {
    /// Creates a bitmap of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        Bitmap {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates an empty bitmap that can grow via [`Bitmap::push`].
    pub fn new() -> Self {
        Bitmap::default()
    }

    /// Builds a bitmap from a boolean slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut b = Bitmap::zeros(bits.len());
        for (i, &v) in bits.iter().enumerate() {
            if v {
                b.set(i, true);
            }
        }
        b
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Sets bit `idx` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn set(&mut self, idx: usize, value: bool) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let (w, b) = (idx / 64, idx % 64);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Appends a bit.
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        if value {
            let idx = self.len - 1;
            self.words[idx / 64] |= 1 << (idx % 64);
        }
    }

    /// Appends `count` copies of `value`, one word at a time.
    pub fn extend_with(&mut self, count: usize, value: bool) {
        let fill = if value { u64::MAX } else { 0 };
        let mut remaining = count;
        while remaining > 0 {
            let take = remaining.min(64);
            self.push_bits(fill, take);
            remaining -= take;
        }
    }

    /// Appends the bit range `[lo, hi)` of `other`, 64 bits at a time.
    ///
    /// # Panics
    ///
    /// Panics if `hi > other.len()` or `lo > hi`.
    pub fn extend_from_range(&mut self, other: &Bitmap, lo: usize, hi: usize) {
        assert!(
            lo <= hi && hi <= other.len,
            "range {lo}..{hi} out of bounds"
        );
        let mut i = lo;
        while i < hi {
            let take = (hi - i).min(64);
            self.push_bits(other.word_at(i), take);
            i += take;
        }
    }

    /// 64 bits starting at bit `idx` (unaligned read across word
    /// boundaries; bits past the end read as zero).
    pub(crate) fn word_at(&self, idx: usize) -> u64 {
        debug_assert!(idx <= self.len, "word_at {idx} out of range {}", self.len);
        let (wi, off) = (idx / 64, idx % 64);
        let lo = self.words.get(wi).copied().unwrap_or(0) >> off;
        if off == 0 {
            lo
        } else {
            lo | self.words.get(wi + 1).copied().unwrap_or(0) << (64 - off)
        }
    }

    /// Appends the low `n` bits of `word` (`n <= 64`).
    pub(crate) fn push_bits(&mut self, word: u64, n: usize) {
        debug_assert!(n <= 64);
        if n == 0 {
            return;
        }
        let w = if n == 64 {
            word
        } else {
            word & ((1u64 << n) - 1)
        };
        let off = self.len % 64;
        if off == 0 {
            self.words.push(w);
        } else {
            let last = self.words.len() - 1;
            self.words[last] |= w << off;
            if off + n > 64 {
                self.words.push(w >> (64 - off));
            }
        }
        self.len += n;
    }

    /// ORs the low `n` bits of `word` into positions `[idx, idx + n)`
    /// (`n <= 64`, range must be in bounds).
    pub(crate) fn or_bits_at(&mut self, idx: usize, word: u64, n: usize) {
        debug_assert!(n <= 64 && idx + n <= self.len, "or_bits_at out of range");
        if n == 0 {
            return;
        }
        let w = if n == 64 {
            word
        } else {
            word & ((1u64 << n) - 1)
        };
        let (wi, off) = (idx / 64, idx % 64);
        self.words[wi] |= w << off;
        if off > 0 && off + n > 64 {
            self.words[wi + 1] |= w >> (64 - off);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits in `[0, idx)` (rank), by scanning every word
    /// below `idx`.
    ///
    /// This is the O(n) baseline; hot paths should build a
    /// [`RankIndex`](crate::RankIndex) once and use its O(1)
    /// [`rank`](crate::RankIndex::rank) instead. The scan is kept as the
    /// property-test oracle for the indexed version.
    ///
    /// # Panics
    ///
    /// Panics if `idx > len`.
    pub fn rank(&self, idx: usize) -> usize {
        assert!(
            idx <= self.len,
            "rank index {idx} out of range {}",
            self.len
        );
        let full_words = idx / 64;
        let mut count: usize = self.words[..full_words]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        let rem = idx % 64;
        if rem != 0 {
            count += (self.words[full_words] & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        count
    }

    /// Whether any bit in `[lo, hi)` is set.
    ///
    /// # Panics
    ///
    /// Panics if `hi > len` or `lo > hi`.
    pub fn any_in_range(&self, lo: usize, hi: usize) -> bool {
        assert!(lo <= hi && hi <= self.len, "range {lo}..{hi} out of bounds");
        let mut i = lo;
        while i < hi {
            let w = i / 64;
            let bit = i % 64;
            let span = (64 - bit).min(hi - i);
            let mask = if span == 64 {
                u64::MAX
            } else {
                ((1u64 << span) - 1) << bit
            };
            if self.words[w] & mask != 0 {
                return true;
            }
            i += span;
        }
        false
    }

    /// Index of the first set bit at or after `from`, scanning by word and
    /// using count-trailing-zeros — the software scanner of paper §4.4.
    pub fn next_one(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let mut w = from / 64;
        // Mask off bits below `from` within the first word.
        let mut word = self.words[w] & (u64::MAX << (from % 64));
        loop {
            if word != 0 {
                let idx = w * 64 + word.trailing_zeros() as usize;
                return if idx < self.len { Some(idx) } else { None };
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            word = self.words[w];
        }
    }

    /// Iterates over indices of set bits in increasing order.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            bitmap: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The backing words (the final word's unused high bits are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Storage footprint in bits (the logical length; this is what the SMASH
    /// storage accounting of Fig. 19 charges).
    pub fn storage_bits(&self) -> usize {
        self.len
    }

    /// Storage footprint in whole bytes.
    pub fn storage_bytes(&self) -> usize {
        self.len.div_ceil(8)
    }
}

/// Iterator over set-bit indices, produced by [`Bitmap::iter_ones`].
#[derive(Debug, Clone)]
pub struct Ones<'a> {
    bitmap: &'a Bitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                let idx = self.word_idx * 64 + bit;
                return if idx < self.bitmap.len {
                    Some(idx)
                } else {
                    None
                };
            }
            self.word_idx += 1;
            if self.word_idx >= self.bitmap.words.len() {
                return None;
            }
            self.current = self.bitmap.words[self.word_idx];
        }
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut b = Bitmap::new();
        for v in iter {
            b.push(v);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_are_all_clear() {
        let b = Bitmap::zeros(100);
        assert_eq!(b.len(), 100);
        assert_eq!(b.count_ones(), 0);
        assert!(!b.get(99));
    }

    #[test]
    fn set_get_roundtrip_across_word_boundary() {
        let mut b = Bitmap::zeros(130);
        for &i in &[0, 63, 64, 65, 127, 128, 129] {
            b.set(i, true);
            assert!(b.get(i));
        }
        assert_eq!(b.count_ones(), 7);
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 6);
    }

    #[test]
    fn push_grows() {
        let mut b = Bitmap::new();
        for i in 0..200 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 200);
        assert_eq!(b.count_ones(), (0..200).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn iter_ones_matches_get() {
        let mut b = Bitmap::zeros(300);
        let set = [1usize, 2, 63, 64, 190, 299];
        for &i in &set {
            b.set(i, true);
        }
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), set);
    }

    #[test]
    fn next_one_scans_forward() {
        let mut b = Bitmap::zeros(200);
        b.set(5, true);
        b.set(130, true);
        assert_eq!(b.next_one(0), Some(5));
        assert_eq!(b.next_one(5), Some(5));
        assert_eq!(b.next_one(6), Some(130));
        assert_eq!(b.next_one(131), None);
    }

    #[test]
    fn rank_counts_prefix() {
        let b = Bitmap::from_bools(&[true, false, true, true, false]);
        assert_eq!(b.rank(0), 0);
        assert_eq!(b.rank(1), 1);
        assert_eq!(b.rank(3), 2);
        assert_eq!(b.rank(5), 3);
    }

    #[test]
    fn rank_across_words() {
        let mut b = Bitmap::zeros(256);
        for i in (0..256).step_by(2) {
            b.set(i, true);
        }
        assert_eq!(b.rank(128), 64);
        assert_eq!(b.rank(256), 128);
    }

    #[test]
    fn any_in_range_detects_isolated_bit() {
        let mut b = Bitmap::zeros(300);
        b.set(192, true);
        assert!(b.any_in_range(128, 256));
        assert!(b.any_in_range(192, 193));
        assert!(!b.any_in_range(0, 192));
        assert!(!b.any_in_range(193, 300));
        assert!(!b.any_in_range(10, 10));
    }

    #[test]
    fn extend_from_range_copies_bits() {
        let src = Bitmap::from_bools(&[true, false, true, false, true]);
        let mut dst = Bitmap::new();
        dst.extend_from_range(&src, 1, 4);
        assert_eq!(dst.len(), 3);
        assert_eq!(dst.iter_ones().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn extend_from_range_matches_per_bit_copy_across_words() {
        let mut src = Bitmap::zeros(300);
        for i in (0..300).step_by(7) {
            src.set(i, true);
        }
        for (lo, hi) in [(0, 300), (1, 299), (63, 129), (64, 128), (130, 131)] {
            let mut dst = Bitmap::zeros(5); // misalign the destination
            dst.set(2, true);
            let mut want = dst.clone();
            for i in lo..hi {
                want.push(src.get(i));
            }
            dst.extend_from_range(&src, lo, hi);
            assert_eq!(dst, want, "range {lo}..{hi}");
        }
    }

    #[test]
    fn extend_with_fills_words() {
        let mut b = Bitmap::zeros(3);
        b.extend_with(130, true);
        b.extend_with(70, false);
        assert_eq!(b.len(), 203);
        assert_eq!(b.count_ones(), 130);
        assert!(b.get(3) && b.get(132) && !b.get(133));
    }

    #[test]
    fn word_at_reads_unaligned() {
        let mut b = Bitmap::zeros(200);
        for &i in &[0, 5, 64, 70, 127, 199] {
            b.set(i, true);
        }
        for idx in [0usize, 1, 5, 63, 64, 65, 120, 136, 199, 200] {
            let w = b.word_at(idx);
            for bit in 0..64 {
                let want = idx + bit < 200 && b.get(idx + bit);
                assert_eq!((w >> bit) & 1 == 1, want, "idx {idx} bit {bit}");
            }
        }
    }

    #[test]
    fn or_bits_at_sets_range() {
        let mut b = Bitmap::zeros(200);
        b.or_bits_at(60, 0b1011, 4);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![60, 61, 63]);
        b.or_bits_at(126, u64::MAX, 64);
        assert_eq!(b.count_ones(), 3 + 64);
        assert!(b.get(126) && b.get(189) && !b.get(190));
    }

    #[test]
    fn from_iterator_collects() {
        let b: Bitmap = (0..10).map(|i| i % 2 == 1).collect();
        assert_eq!(b.count_ones(), 5);
    }

    #[test]
    fn storage_accounting() {
        let b = Bitmap::zeros(9);
        assert_eq!(b.storage_bits(), 9);
        assert_eq!(b.storage_bytes(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitmap::zeros(3).get(3);
    }
}
