use crate::SmashError;

/// Maximum number of bitmap levels the encoding supports.
///
/// The paper's system "is designed to support a certain maximum number of
/// levels of the hierarchy" (§3.2); its examples use up to three. We allow
/// one extra level in software; the BMU hardware model enforces its own
/// (3-level) buffering limit.
pub const MAX_LEVELS: usize = 4;

/// Maximum compression ratio at any level.
///
/// With the paper's 256-byte BMU SRAM buffers, "the maximum compression
/// ratio supported in the BMU is 256 × 8 = 2048:1" (§4.2.1).
pub const MAX_RATIO: u32 = 2048;

/// Traversal order of the linearized matrix.
///
/// SpMV compresses the operand row-major; the paper's SpMM keeps the `B`
/// operand column-major (CSC-style) so its columns scan contiguously (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// Blocks cover consecutive elements of a row.
    #[default]
    RowMajor,
    /// Blocks cover consecutive elements of a column.
    ColMajor,
}

/// Configuration of a SMASH bitmap hierarchy.
///
/// `ratios[0]` is the Bitmap-0 compression ratio (matrix elements per
/// level-0 bit, i.e. the NZA block size); `ratios[i]` for `i > 0` is the
/// number of level-`i-1` bits covered by one level-`i` bit. The paper's
/// `Mi.b2.b1.b0` annotation therefore maps to `ratios = [b0, b1, b2]`.
///
/// # Example
///
/// ```
/// use smash_core::{Layout, SmashConfig};
///
/// // The paper's default SpMV configuration "16.4.2".
/// let cfg = SmashConfig::row_major(&[2, 4, 16])?;
/// assert_eq!(cfg.block_size(), 2);
/// assert_eq!(cfg.levels(), 3);
/// assert_eq!(cfg.layout(), Layout::RowMajor);
/// # Ok::<(), smash_core::SmashError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SmashConfig {
    ratios: Vec<u32>,
    layout: Layout,
}

impl SmashConfig {
    /// Creates a configuration with the given per-level ratios (level 0
    /// first) and layout.
    ///
    /// # Errors
    ///
    /// * [`SmashError::NoLevels`] if `ratios` is empty,
    /// * [`SmashError::TooManyLevels`] if more than [`MAX_LEVELS`] levels,
    /// * [`SmashError::InvalidRatio`] if `ratios[0] == 0`, any upper-level
    ///   ratio is `< 2`, or any ratio exceeds [`MAX_RATIO`].
    pub fn new(ratios: &[u32], layout: Layout) -> Result<Self, SmashError> {
        if ratios.is_empty() {
            return Err(SmashError::NoLevels);
        }
        if ratios.len() > MAX_LEVELS {
            return Err(SmashError::TooManyLevels {
                got: ratios.len(),
                max: MAX_LEVELS,
            });
        }
        for (level, &r) in ratios.iter().enumerate() {
            let min = if level == 0 { 1 } else { 2 };
            if r < min || r > MAX_RATIO {
                return Err(SmashError::InvalidRatio { level, ratio: r });
            }
        }
        Ok(SmashConfig {
            ratios: ratios.to_vec(),
            layout,
        })
    }

    /// Row-major configuration (the common case).
    ///
    /// # Errors
    ///
    /// Same as [`SmashConfig::new`].
    pub fn row_major(ratios: &[u32]) -> Result<Self, SmashError> {
        SmashConfig::new(ratios, Layout::RowMajor)
    }

    /// Column-major configuration (the SpMM `B` operand).
    ///
    /// # Errors
    ///
    /// Same as [`SmashConfig::new`].
    pub fn col_major(ratios: &[u32]) -> Result<Self, SmashError> {
        SmashConfig::new(ratios, Layout::ColMajor)
    }

    /// Builds a configuration from the paper's `b2.b1.b0` notation.
    ///
    /// # Errors
    ///
    /// Same as [`SmashConfig::new`].
    pub fn from_paper_notation(
        b2: u32,
        b1: u32,
        b0: u32,
        layout: Layout,
    ) -> Result<Self, SmashError> {
        SmashConfig::new(&[b0, b1, b2], layout)
    }

    /// Per-level compression ratios, level 0 first.
    pub fn ratios(&self) -> &[u32] {
        &self.ratios
    }

    /// Number of bitmap levels.
    pub fn levels(&self) -> usize {
        self.ratios.len()
    }

    /// The Bitmap-0 ratio: elements per level-0 bit, i.e. the NZA block size.
    pub fn block_size(&self) -> usize {
        self.ratios[0] as usize
    }

    /// Traversal order.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Returns a copy with a different Bitmap-0 ratio (used by the Fig 14/15
    /// sensitivity sweep, which varies `b0` while keeping upper levels).
    ///
    /// # Errors
    ///
    /// Same as [`SmashConfig::new`].
    pub fn with_block_size(&self, b0: u32) -> Result<Self, SmashError> {
        let mut ratios = self.ratios.clone();
        ratios[0] = b0;
        SmashConfig::new(&ratios, self.layout)
    }

    /// Returns a copy with the opposite layout.
    pub fn transposed(&self) -> Self {
        SmashConfig {
            ratios: self.ratios.clone(),
            layout: match self.layout {
                Layout::RowMajor => Layout::ColMajor,
                Layout::ColMajor => Layout::RowMajor,
            },
        }
    }
}

impl std::fmt::Display for SmashConfig {
    /// Formats in the paper's dotted top-down notation (e.g. `16.4.2`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, r) in self.ratios.iter().rev().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_paper_configs() {
        for ratios in [
            &[2u32, 4, 16][..],
            &[2, 4, 8],
            &[2, 4, 2],
            &[8][..],
            &[2, 4],
        ] {
            assert!(SmashConfig::row_major(ratios).is_ok(), "{ratios:?}");
        }
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            SmashConfig::row_major(&[]),
            Err(SmashError::NoLevels)
        ));
    }

    #[test]
    fn rejects_too_many_levels() {
        assert!(matches!(
            SmashConfig::row_major(&[2; 5]),
            Err(SmashError::TooManyLevels { .. })
        ));
    }

    #[test]
    fn rejects_bad_ratios() {
        assert!(SmashConfig::row_major(&[0]).is_err());
        assert!(SmashConfig::row_major(&[2, 1]).is_err());
        assert!(SmashConfig::row_major(&[4096]).is_err());
        // b0 = 1 (a bit per element) is allowed, upper levels need >= 2.
        assert!(SmashConfig::row_major(&[1, 2]).is_ok());
    }

    #[test]
    fn paper_notation_order() {
        let cfg = SmashConfig::from_paper_notation(16, 4, 2, Layout::RowMajor).unwrap();
        assert_eq!(cfg.ratios(), &[2, 4, 16]);
        assert_eq!(cfg.to_string(), "16.4.2");
        assert_eq!(cfg.block_size(), 2);
    }

    #[test]
    fn with_block_size_keeps_upper_levels() {
        let cfg = SmashConfig::row_major(&[2, 4, 16]).unwrap();
        let cfg8 = cfg.with_block_size(8).unwrap();
        assert_eq!(cfg8.ratios(), &[8, 4, 16]);
    }

    #[test]
    fn transposed_flips_layout() {
        let cfg = SmashConfig::row_major(&[2]).unwrap();
        assert_eq!(cfg.transposed().layout(), Layout::ColMajor);
        assert_eq!(cfg.transposed().transposed().layout(), Layout::RowMajor);
    }
}
