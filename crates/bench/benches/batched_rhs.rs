//! Batched right-hand sides: the column-tiled sparse × dense SpMM against
//! the loop of independent SpMVs it replaces.
//!
//! The per-column loop streams the sparse operand once per right-hand
//! side; the batched kernel streams it once per 8-wide column tile and
//! amortizes every index load over the tile. The win should grow with the
//! batch width and already be decisive at 8 right-hand sides (the
//! `batched_rhs_json` bin asserts that; this bench records the curve).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smash_core::{SmashConfig, SmashMatrix};
use smash_kernels::{native, Executor};
use smash_matrix::{generators, Bcsr, Dense};
use smash_parallel::{par_spmm_dense_csr, ThreadPool};
use std::time::Duration;

fn test_batch(rows: usize, cols: usize) -> Dense<f64> {
    generators::dense_batch(rows, cols, 5)
}

fn bench_batched_rhs(c: &mut Criterion) {
    let a = generators::clustered(2048, 2048, 120_000, 6, 42);
    let bcsr = Bcsr::from_csr(&a, 2, 2).expect("valid 2x2 blocking");
    let sm = SmashMatrix::encode(
        &a,
        SmashConfig::row_major(&[2, 4, 16]).expect("paper config"),
    );
    let exec = Executor::auto();
    let pool = ThreadPool::new(4);

    let mut group = c.benchmark_group("batched_rhs");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(500));
    for &n in &[1usize, 4, 8, 16] {
        let b = test_batch(2048, n);
        let cols: Vec<Vec<f64>> = (0..n).map(|j| b.col(j)).collect();
        let mut out = Dense::zeros(2048, n);
        let mut y = vec![0.0f64; 2048];
        group.throughput(Throughput::Elements((a.nnz() * n) as u64));

        // The baseline being replaced: one independent SpMV per column.
        group.bench_with_input(BenchmarkId::new("spmv_per_column", n), &n, |bch, _| {
            bch.iter(|| {
                for x in &cols {
                    native::spmv_csr(&a, x, &mut y);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("spmm_dense_csr", n), &n, |bch, _| {
            bch.iter(|| native::spmm_dense_csr(&a, &b, &mut out))
        });
        group.bench_with_input(BenchmarkId::new("spmm_dense_bcsr", n), &n, |bch, _| {
            bch.iter(|| native::spmm_dense_bcsr(&bcsr, &b, &mut out))
        });
        group.bench_with_input(BenchmarkId::new("spmm_dense_smash", n), &n, |bch, _| {
            bch.iter(|| native::spmm_dense_smash(&sm, &b, &mut out))
        });
        group.bench_with_input(BenchmarkId::new("par_spmm_dense_csr", n), &n, |bch, _| {
            bch.iter(|| par_spmm_dense_csr(&pool, &a, &b, &mut out))
        });
        group.bench_with_input(BenchmarkId::new("executor_auto", n), &n, |bch, _| {
            bch.iter(|| exec.spmm_dense(&a, &b, &mut out))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batched_rhs);
criterion_main!(benches);
