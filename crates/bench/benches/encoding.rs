//! Encode/decode throughput of the SMASH format (the cost behind the
//! paper's Fig. 20 conversion overheads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smash_core::{SmashConfig, SmashMatrix};
use smash_matrix::generators;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoding");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let a = generators::clustered(2048, 2048, 120_000, 6, 42);
    for ratios in [&[2u32][..], &[2, 4], &[2, 4, 16]] {
        let cfg = SmashConfig::row_major(ratios).expect("valid ratios");
        let label = format!("{cfg}");
        group.bench_with_input(BenchmarkId::new("encode", &label), &a, |b, a| {
            b.iter(|| black_box(SmashMatrix::encode(a, cfg.clone())))
        });
        let sm = SmashMatrix::encode(&a, cfg.clone());
        group.bench_with_input(BenchmarkId::new("decode", &label), &sm, |b, sm| {
            b.iter(|| black_box(sm.decode()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
