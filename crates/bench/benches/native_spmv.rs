//! Wall-clock SpMV across the software-only mechanisms (the Criterion
//! counterpart of the paper's Fig. 9 SpMV column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smash_core::{SmashConfig, SmashMatrix};
use smash_kernels::{native, test_vector};
use smash_matrix::{suite::paper_suite, Bcsr};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_spmv");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    // A sparse (M4) and a dense-clustered (M8) representative.
    for id in [4usize, 8] {
        let spec = &paper_suite()[id - 1];
        let a = spec.generate(8, 42);
        let x = test_vector(a.cols());
        let mut y = vec![0.0f64; a.rows()];
        let bcsr = Bcsr::from_csr(&a, 2, 2).expect("valid block");
        let ratios = spec.bitmap_cfg.ratios_low_to_high();
        let sm = SmashMatrix::encode(&a, SmashConfig::row_major(&ratios).expect("paper config"));
        let label = spec.label();

        group.bench_with_input(BenchmarkId::new("csr", &label), &a, |b, a| {
            b.iter(|| native::spmv_csr(a, &x, &mut y))
        });
        group.bench_with_input(BenchmarkId::new("csr_opt(mkl)", &label), &a, |b, a| {
            b.iter(|| native::spmv_csr_opt(a, &x, &mut y))
        });
        group.bench_with_input(BenchmarkId::new("bcsr", &label), &bcsr, |b, m| {
            b.iter(|| native::spmv_bcsr(m, &x, &mut y))
        });
        group.bench_with_input(BenchmarkId::new("sw_smash", &label), &sm, |b, m| {
            b.iter(|| native::spmv_smash(m, &x, &mut y))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
