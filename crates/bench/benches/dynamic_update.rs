//! Dynamic-matrix updates: the delta overlay against the full rebuild
//! it replaces.
//!
//! An update batch of `k` point mutations either goes into a
//! `DynamicMatrix` overlay (k map inserts, reads merge on the fly) or
//! forces a from-scratch CSR rebuild (O(nnz) triplet reconstruction).
//! The overlay should win decisively while `k` is a small fraction of
//! nnz — the regime the `dynamic_json` bin asserts; this bench records
//! the curve, including the merged-read penalty the overlay pays on
//! the following SpMV and the cost of compacting the overlay away.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smash_core::DynamicMatrix;
use smash_matrix::{generators, spmv_rows, Csr};
use std::time::Duration;

/// One deterministic mutation batch: `k` value overwrites spread over
/// the matrix (the overlay's worst case is new coordinates; overwrites
/// keep nnz stable so the rebuild cost is comparable).
fn batch(a: &Csr<f64>, k: usize) -> Vec<(usize, usize, f64)> {
    (0..k)
        .map(|i| {
            let r = (i * 2654435761) % a.rows();
            let c = (i * 40503 + 7) % a.cols();
            (r, c, (i % 17) as f64 - 8.0)
        })
        .collect()
}

fn bench_dynamic_update(c: &mut Criterion) {
    let a = generators::clustered(2048, 2048, 120_000, 6, 42);
    let x = vec![1.0f64; a.cols()];
    let mut y = vec![0.0f64; a.rows()];

    let mut group = c.benchmark_group("dynamic_update");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(500));
    for &permille in &[1usize, 10, 100] {
        let k = (a.nnz() * permille / 1000).max(1);
        let muts = batch(&a, k);
        group.throughput(Throughput::Elements(k as u64));

        // Overlay path: apply the batch, then read through the merge.
        group.bench_with_input(
            BenchmarkId::new("overlay_apply_spmv", permille),
            &permille,
            |bch, _| {
                bch.iter(|| {
                    let mut m = DynamicMatrix::from_csr(a.clone());
                    for &(r, cc, v) in &muts {
                        m.set(r, cc, v);
                    }
                    spmv_rows(&m, &x, &mut y);
                    y.len()
                })
            },
        );
        // The alternative: rebuild the whole CSR, then a plain read.
        group.bench_with_input(
            BenchmarkId::new("rebuild_spmv", permille),
            &permille,
            |bch, _| {
                bch.iter(|| {
                    let mut m = DynamicMatrix::from_csr(a.clone());
                    for &(r, cc, v) in &muts {
                        m.set(r, cc, v);
                    }
                    let rebuilt = m.merged_csr();
                    spmv_rows(&rebuilt, &x, &mut y);
                    y.len()
                })
            },
        );
        // Folding the overlay away (re-encode into a fresh base).
        group.bench_with_input(
            BenchmarkId::new("compact", permille),
            &permille,
            |bch, _| {
                bch.iter(|| {
                    let mut m = DynamicMatrix::from_csr(a.clone());
                    for &(r, cc, v) in &muts {
                        m.set(r, cc, v);
                    }
                    m.compact();
                    m.nnz()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dynamic_update);
criterion_main!(benches);
