//! Ablation benches for the design choices DESIGN.md calls out: hierarchy
//! depth, Bitmap-0 ratio, and the simulator's prefetcher.
//!
//! These report simulated *cycles* as the measured quantity is wall-clock
//! of the simulation; the interesting numbers are printed once per run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smash_core::SmashConfig;
use smash_kernels::{harness, Mechanism};
use smash_matrix::generators;
use smash_sim::SystemConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let a = generators::clustered(1024, 1024, 10_000, 6, 42);
    let sys = SystemConfig::paper_table2_scaled(16);

    // Hierarchy depth 1 vs 3 for the same matrix.
    for ratios in [&[2u32][..], &[2, 4], &[2, 4, 16]] {
        let cfg = SmashConfig::row_major(ratios).expect("valid");
        let cycles = harness::sim_spmv(Mechanism::Smash, &a, &cfg, &sys).cycles;
        println!(
            "ablation depth {}: {} simulated cycles",
            ratios.len(),
            cycles
        );
        group.bench_with_input(
            BenchmarkId::new("smash_depth", ratios.len()),
            &cfg,
            |b, cfg| b.iter(|| black_box(harness::sim_spmv(Mechanism::Smash, &a, cfg, &sys))),
        );
    }

    // Prefetcher on/off for the CSR baseline.
    for (name, s) in [
        ("prefetch_on", sys.clone()),
        ("prefetch_off", sys.clone().without_prefetch()),
    ] {
        let cfg = SmashConfig::row_major(&[2, 4, 16]).expect("valid");
        let cycles = harness::sim_spmv(Mechanism::TacoCsr, &a, &cfg, &s).cycles;
        println!("ablation {name}: {cycles} simulated cycles (CSR SpMV)");
        group.bench_with_input(BenchmarkId::new("csr", name), &s, |b, s| {
            b.iter(|| black_box(harness::sim_spmv(Mechanism::TacoCsr, &a, &cfg, s)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
