//! Scan throughput of the hierarchy cursor (the §4.4 software scanner) at
//! different densities and depths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smash_core::{Bitmap, BitmapHierarchy};
use std::hint::black_box;
use std::time::Duration;

fn bitmap_with_density(bits: usize, every: usize) -> Bitmap {
    let mut b = Bitmap::zeros(bits);
    for i in (0..bits).step_by(every) {
        b.set(i, true);
    }
    b
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmap_scan");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for every in [2usize, 16, 256] {
        let bm0 = bitmap_with_density(1 << 20, every);
        for ratios in [&[2u32][..], &[2, 4, 16]] {
            let h = BitmapHierarchy::from_level0(&bm0, ratios).expect("valid ratios");
            let label = format!("1/{every} dense, {} levels", ratios.len());
            group.bench_with_input(BenchmarkId::new("blocks", &label), &h, |b, h| {
                b.iter(|| black_box(h.blocks().count()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
