//! Thread-scaling of the parallel kernels: 1/2/4/8 workers across the
//! CSR, BCSR and SMASH formats, plus the parallel compressor.
//!
//! Because the parallel kernels are bit-identical to the serial ones,
//! this bench measures pure scheduling + memory-bandwidth behaviour — the
//! multi-core baseline every hardware-indexing speedup must be compared
//! against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smash_core::{SmashConfig, SmashMatrix};
use smash_kernels::parallel::{
    par_csr_to_smash, par_spmm_csr, par_spmv_bcsr, par_spmv_csr, par_spmv_smash, ThreadPool,
};
use smash_kernels::test_vector;
use smash_matrix::{generators, Bcsr};
use std::time::Duration;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_spmv");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400));
    // A clustered matrix large enough for per-thread ranges to matter.
    let a = generators::clustered(2048, 2048, 120_000, 6, 42);
    let x = test_vector(a.cols());
    let mut y = vec![0.0f64; a.rows()];
    let bcsr = Bcsr::from_csr(&a, 2, 2).expect("valid block");
    // Deep (paper "16.4.2") and flat single-level hierarchies: both are
    // driven through the directory-backed line cursors.
    let sm = SmashMatrix::encode(
        &a,
        SmashConfig::row_major(&[2, 4, 16]).expect("paper config"),
    );
    let sm_flat = SmashMatrix::encode(&a, SmashConfig::row_major(&[2]).expect("flat config"));
    group.throughput(Throughput::Elements(a.nnz() as u64));
    for threads in THREAD_COUNTS {
        let pool = ThreadPool::new(threads);
        group.bench_with_input(BenchmarkId::new("csr", threads), &a, |b, a| {
            b.iter(|| par_spmv_csr(&pool, a, &x, &mut y))
        });
        group.bench_with_input(BenchmarkId::new("bcsr", threads), &bcsr, |b, m| {
            b.iter(|| par_spmv_bcsr(&pool, m, &x, &mut y))
        });
        group.bench_with_input(BenchmarkId::new("smash", threads), &sm, |b, m| {
            b.iter(|| par_spmv_smash(&pool, m, &x, &mut y))
        });
        group.bench_with_input(BenchmarkId::new("smash_flat", threads), &sm_flat, |b, m| {
            b.iter(|| par_spmv_smash(&pool, m, &x, &mut y))
        });
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_spmm");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    let a = generators::uniform(256, 256, 4_000, 7);
    let b = generators::uniform(256, 256, 4_000, 8).to_csc();
    for threads in THREAD_COUNTS {
        let pool = ThreadPool::new(threads);
        group.bench_with_input(BenchmarkId::new("csr", threads), &a, |bch, a| {
            bch.iter(|| par_spmm_csr(&pool, a, &b))
        });
    }
    group.finish();
}

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_compression");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    let a = generators::power_law(2048, 2048, 100_000, 1.3, 9);
    let cfg = SmashConfig::row_major(&[2, 4, 16]).expect("paper config");
    group.throughput(Throughput::Elements(a.nnz() as u64));
    for threads in THREAD_COUNTS {
        let pool = ThreadPool::new(threads);
        group.bench_with_input(BenchmarkId::new("csr_to_smash", threads), &a, |b, a| {
            b.iter(|| par_csr_to_smash(&pool, a, cfg.clone()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spmv, bench_spmm, bench_compression);
criterion_main!(benches);
