//! Precision scaling of the generic kernel stack: the same SpMV/SpMM
//! workloads in `f64` and `f32`, through the same monomorphized loop
//! bodies.
//!
//! `f32` halves the value-array footprint (NZA, CSR values, dense
//! vectors), so memory-bound kernels should gain; the bench pins that
//! expectation and catches regressions where the generic code stops
//! monomorphizing cleanly (e.g. an accidental `to_f64` round trip in a
//! hot loop would show up as f32 falling *behind* f64).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smash_core::{SmashConfig, SmashMatrix};
use smash_kernels::{native, test_vector, Executor};
use smash_matrix::{generators, Csr, Scalar};
use std::time::Duration;

fn spmv_group<T: Scalar>(c: &mut Criterion, label: &str, a: &Csr<T>) {
    let mut group = c.benchmark_group("precision_spmv");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400))
        .throughput(Throughput::Elements(a.nnz() as u64));
    let x = test_vector::<T>(a.cols());
    let mut y = vec![T::ZERO; a.rows()];
    let sm = SmashMatrix::encode(
        a,
        SmashConfig::row_major(&[2, 4, 16]).expect("paper config"),
    );
    let exec = Executor::auto();

    group.bench_with_input(BenchmarkId::new("csr", label), a, |b, a| {
        b.iter(|| native::spmv_csr(a, &x, &mut y))
    });
    group.bench_with_input(BenchmarkId::new("csr_opt", label), a, |b, a| {
        b.iter(|| native::spmv_csr_opt(a, &x, &mut y))
    });
    group.bench_with_input(BenchmarkId::new("smash", label), &sm, |b, m| {
        b.iter(|| native::spmv_smash(m, &x, &mut y))
    });
    group.bench_with_input(BenchmarkId::new("executor_auto", label), a, |b, a| {
        b.iter(|| exec.spmv(a, &x, &mut y))
    });
    group.finish();
}

fn spmm_group<T: Scalar>(c: &mut Criterion, label: &str, a: &Csr<T>, bm: &Csr<T>) {
    let mut group = c.benchmark_group("precision_spmm");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    let bc = bm.to_csc();
    let sa = SmashMatrix::encode(a, SmashConfig::row_major(&[2]).expect("flat config"));
    let sb = SmashMatrix::encode(bm, SmashConfig::col_major(&[2]).expect("flat config"));

    group.bench_with_input(BenchmarkId::new("csr", label), a, |b, a| {
        b.iter(|| native::spmm_csr(a, &bc))
    });
    group.bench_with_input(BenchmarkId::new("smash", label), &sa, |b, sa| {
        b.iter(|| native::spmm_smash(sa, &sb))
    });
    group.finish();
}

fn bench_precision(c: &mut Criterion) {
    // A mid-density clustered SpMV workload and a sparser SpMM pair.
    let a64 = generators::clustered(2048, 2048, 120_000, 6, 42);
    let a32 = a64.cast::<f32>();
    spmv_group(c, "f64", &a64);
    spmv_group(c, "f32", &a32);

    let m64 = generators::uniform(256, 256, 4_000, 7);
    let n64 = generators::uniform(256, 256, 4_000, 8);
    spmm_group(c, "f64", &m64, &n64);
    spmm_group(c, "f32", &m64.cast::<f32>(), &n64.cast::<f32>());
}

criterion_group!(benches, bench_precision);
criterion_main!(benches);
