//! Wall-clock sparse × sparse multiply: the Gustavson engine (serial and
//! parallel, CSR and direct-to-SMASH emission) against the inner-product
//! baselines, on the power-law A·A and A·Aᵀ workloads where output rows
//! vary wildly in density.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smash_core::SmashConfig;
use smash_kernels::{native, spgemm};
use smash_matrix::generators;
use smash_parallel::ThreadPool;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let pool = ThreadPool::new(4);
    for (label, a) in [
        (
            "power_law_512",
            generators::power_law(512, 512, 6_000, 1.3, 21),
        ),
        (
            "power_law_1024",
            generators::power_law(1024, 1024, 14_000, 1.5, 22),
        ),
    ] {
        let at = a.transpose();
        let a_csc = a.to_csc();
        let at_csc = at.to_csc();
        let cfg = SmashConfig::row_major(&[2, 4]).expect("valid");

        group.bench_with_input(BenchmarkId::new("aa/gustavson", label), &a, |bch, a| {
            bch.iter(|| black_box(spgemm::spgemm(a, a)))
        });
        group.bench_with_input(
            BenchmarkId::new("aa/gustavson_par4", label),
            &a,
            |bch, a| bch.iter(|| black_box(spgemm::par_spgemm(&pool, a, a))),
        );
        group.bench_with_input(BenchmarkId::new("aa/csr_opt(mkl)", label), &a, |bch, a| {
            bch.iter(|| black_box(native::spmm_csr_opt(a, &a_csc)))
        });
        group.bench_with_input(BenchmarkId::new("aa/to_smash", label), &a, |bch, a| {
            bch.iter(|| black_box(spgemm::spgemm_smash(a, a, cfg.clone())))
        });
        group.bench_with_input(BenchmarkId::new("aat/gustavson", label), &a, |bch, a| {
            bch.iter(|| black_box(spgemm::spgemm(a, &at)))
        });
        group.bench_with_input(BenchmarkId::new("aat/csr_opt(mkl)", label), &a, |bch, a| {
            bch.iter(|| black_box(native::spmm_csr_opt(a, &at_csc)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
