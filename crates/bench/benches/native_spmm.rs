//! Wall-clock inner-product SpMM across the software-only mechanisms
//! (Fig. 9, SpMM column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smash_core::{SmashConfig, SmashMatrix};
use smash_kernels::native;
use smash_matrix::{suite::paper_suite, Bcsr};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_spmm");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for id in [2usize, 8] {
        let spec = &paper_suite()[id - 1];
        let a = spec.generate(48, 42);
        let b = spec.generate(48, 43);
        let bc = b.to_csc();
        let ab = Bcsr::from_csr(&a, 2, 2).expect("valid");
        let btb = Bcsr::from_csr(&b.transpose(), 2, 2).expect("valid");
        let sa = SmashMatrix::encode(&a, SmashConfig::row_major(&[2]).expect("valid"));
        let sb = SmashMatrix::encode(&b, SmashConfig::col_major(&[2]).expect("valid"));
        let label = spec.label();

        group.bench_with_input(BenchmarkId::new("csr", &label), &a, |bch, a| {
            bch.iter(|| black_box(native::spmm_csr(a, &bc)))
        });
        group.bench_with_input(BenchmarkId::new("csr_opt(mkl)", &label), &a, |bch, a| {
            bch.iter(|| black_box(native::spmm_csr_opt(a, &bc)))
        });
        group.bench_with_input(BenchmarkId::new("bcsr", &label), &ab, |bch, m| {
            bch.iter(|| black_box(native::spmm_bcsr(m, &btb)))
        });
        group.bench_with_input(BenchmarkId::new("sw_smash", &label), &sa, |bch, m| {
            bch.iter(|| black_box(native::spmm_smash(m, &sb)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
