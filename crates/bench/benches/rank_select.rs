//! Rank/select index microbenchmarks: O(1) indexed rank vs the O(n) word
//! scan, and O(1) directory row seeks vs full Bitmap-0 expansion.
//!
//! These quantify the tentpole of the indexed-access refactor: the
//! kernels' per-row addressing no longer pays O(logical bits) per call.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smash_core::{Bitmap, RankIndex, SmashConfig, SmashMatrix};
use smash_matrix::generators;
use std::hint::black_box;
use std::time::Duration;

fn bitmap_with_density(bits: usize, every: usize) -> Bitmap {
    let mut b = Bitmap::zeros(bits);
    for i in (0..bits).step_by(every) {
        b.set(i, true);
    }
    b
}

/// Indexed vs scanning rank at several probe positions of a 1 Mi-bit map.
fn bench_rank(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let bits = 1 << 20;
    let bm = bitmap_with_density(bits, 3);
    let idx = RankIndex::build(&bm);
    // Probe positions spread across the bitmap (the scan cost grows with
    // the position; the indexed cost does not).
    let probes: Vec<usize> = (1..=16).map(|i| i * (bits / 16) - 7).collect();
    group.bench_with_input(BenchmarkId::new("indexed", bits), &probes, |b, probes| {
        b.iter(|| {
            let mut acc = 0usize;
            for &p in probes {
                acc += idx.rank(&bm, black_box(p));
            }
            acc
        })
    });
    group.bench_with_input(BenchmarkId::new("scan", bits), &probes, |b, probes| {
        b.iter(|| {
            let mut acc = 0usize;
            for &p in probes {
                acc += bm.rank(black_box(p));
            }
            acc
        })
    });
    group.finish();
}

/// Select throughput over the same bitmap.
fn bench_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("select");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let bm = bitmap_with_density(1 << 20, 5);
    let idx = RankIndex::build(&bm);
    let ones = idx.ones();
    let ks: Vec<usize> = (1..=16).map(|i| i * (ones / 16) - 1).collect();
    group.bench_with_input(BenchmarkId::new("indexed", ones), &ks, |b, ks| {
        b.iter(|| {
            let mut acc = 0usize;
            for &k in ks {
                acc += idx.select(&bm, black_box(k)).unwrap();
            }
            acc
        })
    });
    group.bench_with_input(BenchmarkId::new("iter_ones_nth", ones), &ks, |b, ks| {
        b.iter(|| {
            let mut acc = 0usize;
            for &k in ks {
                acc += bm.iter_ones().nth(black_box(k)).unwrap();
            }
            acc
        })
    });
    group.finish();
}

/// Seeking one row of a compressed matrix: directory cursor vs expanding
/// the whole logical Bitmap-0 first.
fn bench_row_seek(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_seek");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let a = generators::clustered(2048, 2048, 60_000, 6, 17);
    let sm = SmashMatrix::encode(
        &a,
        SmashConfig::row_major(&[2, 4, 16]).expect("paper config"),
    );
    let rows: Vec<usize> = (0..16).map(|i| i * 127 % 2048).collect();
    group.bench_with_input(BenchmarkId::new("directory", 2048), &rows, |b, rows| {
        b.iter(|| {
            let mut acc = 0usize;
            for &r in rows {
                // O(1) seek + walk of just that row's blocks.
                for (ordinal, logical) in sm.line_cursor(black_box(r)) {
                    acc += ordinal + logical;
                }
            }
            acc
        })
    });
    group.bench_with_input(BenchmarkId::new("expand_full", 2048), &rows, |b, rows| {
        b.iter(|| {
            let mut acc = 0usize;
            for &r in rows {
                // What the seed kernels did: materialize the dense bitmap,
                // then scan to the row.
                let full = sm.full_bitmap0();
                let bpl = sm.blocks_per_line();
                let base = full.rank(r * bpl);
                for (i, logical) in full
                    .iter_ones()
                    .skip_while(|&l| l < r * bpl)
                    .take_while(|&l| l < (r + 1) * bpl)
                    .enumerate()
                {
                    acc += base + i + logical;
                }
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rank, bench_select, bench_row_seek);
criterion_main!(benches);
