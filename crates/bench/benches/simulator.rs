//! Throughput of the timing simulator itself (uops per second), which
//! bounds how large the figure experiments can run.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use smash_core::SmashConfig;
use smash_kernels::{harness, Mechanism};
use smash_matrix::generators;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let a = generators::uniform(512, 512, 10_000, 42);
    let cfg = SmashConfig::row_major(&[2, 4, 16]).expect("valid");
    let sys = smash_sim::SystemConfig::paper_table2_scaled(16);
    let uops = harness::count_spmv(Mechanism::TacoCsr, &a, &cfg).instructions();
    group.throughput(Throughput::Elements(uops));
    group.bench_function("sim_spmv_csr", |b| {
        b.iter(|| black_box(harness::sim_spmv(Mechanism::TacoCsr, &a, &cfg, &sys)))
    });
    group.bench_function("count_spmv_csr", |b| {
        b.iter(|| black_box(harness::count_spmv(Mechanism::TacoCsr, &a, &cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
