//! Offline calibrator for the dispatch [`Planner`]: measures every
//! candidate of the grid (`smash_bench::zoo::candidates`) on every zoo
//! matrix and regenerates the checked-in calibration table the planner
//! compiles in (`crates/kernels/src/planner_calibration.tsv`).
//!
//! Usage:
//!
//! * `cargo run --release -p smash-bench --bin planner_calibrate`
//!   — re-measure and rewrite the checked-in table (pass a path as the
//!   first argument to write elsewhere).
//! * `… --bin planner_calibrate -- --check`
//!   — **no timing**: verify the checked-in table is structurally
//!   current — it parses, its zoo profiles match the generators in this
//!   build, and it has exactly one measured row per candidate of the
//!   current grid. A stale table (zoo changed, candidate added, op
//!   renamed) fails with a diff, which is how CI catches a forgotten
//!   regeneration without depending on runner timing noise.

use smash_bench::zoo::{self, Candidate, ZooMatrix, CALIBRATION_RHS};
use smash_core::{SmashConfig, SmashMatrix};
use smash_kernels::planner::{Format, Op, Planner};
use smash_kernels::{native, spgemm};
use smash_matrix::{generators, Bcsr, Dense};
use smash_parallel::{
    par_csr_to_smash, par_spmm_dense_bcsr, par_spmm_dense_csr, par_spmm_dense_smash, par_spmv_bcsr,
    par_spmv_csr, par_spmv_smash, ThreadPool,
};
use std::collections::BTreeSet;

fn default_table_path() -> String {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../kernels/src/planner_calibration.tsv"
    )
    .to_string()
}

fn smash_config() -> SmashConfig {
    SmashConfig::row_major(&[2, 4]).expect("valid ratios")
}

/// Measures one candidate on one zoo matrix; returns `(work, ns)` in
/// the planner's work measure (logical nnz, nnz × RHS, symbolic flops).
fn measure(z: &ZooMatrix, c: &Candidate, pool: impl Fn(usize) -> ThreadPool) -> (f64, f64) {
    let a = &z.matrix;
    let nnz = a.nnz().max(1);
    let reps = (2_000_000 / nnz).clamp(1, 50);
    let samples = 5;
    match c.op {
        Op::Spmv => {
            let x = vec![0.5f64; a.cols()];
            let mut y = vec![0.0f64; a.rows()];
            let ns = match (c.format, c.threads) {
                (Format::Csr, 1) => zoo::time_ns(samples, reps, || {
                    native::spmv_csr(a, &x, &mut y);
                    y.len()
                }),
                (Format::Csr, t) => {
                    let p = pool(t);
                    zoo::time_ns(samples, reps, || {
                        par_spmv_csr(&p, a, &x, &mut y);
                        y.len()
                    })
                }
                (Format::Bcsr, t) => {
                    let b = Bcsr::from_csr(a, 2, 2).expect("2x2 blocking");
                    if t == 1 {
                        zoo::time_ns(samples, reps, || {
                            native::spmv_bcsr(&b, &x, &mut y);
                            y.len()
                        })
                    } else {
                        let p = pool(t);
                        zoo::time_ns(samples, reps, || {
                            par_spmv_bcsr(&p, &b, &x, &mut y);
                            y.len()
                        })
                    }
                }
                (Format::Smash, t) => {
                    let sm = SmashMatrix::encode(a, smash_config());
                    if t == 1 {
                        zoo::time_ns(samples, reps, || {
                            native::spmv_smash(&sm, &x, &mut y);
                            y.len()
                        })
                    } else {
                        let p = pool(t);
                        zoo::time_ns(samples, reps, || {
                            par_spmv_smash(&p, &sm, &x, &mut y);
                            y.len()
                        })
                    }
                }
                (Format::Dynamic, _) => {
                    unreachable!("the candidate grid has no dynamic rows")
                }
            };
            (nnz as f64, ns)
        }
        Op::SpmmDense => {
            let b = generators::dense_batch(a.cols(), CALIBRATION_RHS, 5);
            let mut cmat = Dense::zeros(a.rows(), CALIBRATION_RHS);
            let reps = reps.div_ceil(CALIBRATION_RHS).max(1);
            let ns = match (c.format, c.threads) {
                (Format::Csr, 1) => zoo::time_ns(samples, reps, || {
                    native::spmm_dense_csr(a, &b, &mut cmat);
                    cmat.cols()
                }),
                (Format::Csr, t) => {
                    let p = pool(t);
                    zoo::time_ns(samples, reps, || {
                        par_spmm_dense_csr(&p, a, &b, &mut cmat);
                        cmat.cols()
                    })
                }
                (Format::Bcsr, t) => {
                    let bc = Bcsr::from_csr(a, 2, 2).expect("2x2 blocking");
                    if t == 1 {
                        zoo::time_ns(samples, reps, || {
                            native::spmm_dense_bcsr(&bc, &b, &mut cmat);
                            cmat.cols()
                        })
                    } else {
                        let p = pool(t);
                        zoo::time_ns(samples, reps, || {
                            par_spmm_dense_bcsr(&p, &bc, &b, &mut cmat);
                            cmat.cols()
                        })
                    }
                }
                (Format::Smash, t) => {
                    let sm = SmashMatrix::encode(a, smash_config());
                    if t == 1 {
                        zoo::time_ns(samples, reps, || {
                            native::spmm_dense_smash(&sm, &b, &mut cmat);
                            cmat.cols()
                        })
                    } else {
                        let p = pool(t);
                        zoo::time_ns(samples, reps, || {
                            par_spmm_dense_smash(&p, &sm, &b, &mut cmat);
                            cmat.cols()
                        })
                    }
                }
                (Format::Dynamic, _) => {
                    unreachable!("the candidate grid has no dynamic rows")
                }
            };
            ((nnz * CALIBRATION_RHS) as f64, ns)
        }
        Op::Spgemm => {
            // A·A for square members, A·Aᵀ otherwise (the zoo's
            // tall-skinny shape has no conforming self-product).
            let bt;
            let b = if a.rows() == a.cols() {
                a
            } else {
                bt = a.transpose();
                &bt
            };
            let work = spgemm::stored_work(a, b) as f64;
            let ns = if c.threads == 1 {
                zoo::time_ns(3, 1, || spgemm::spgemm(a, b).nnz())
            } else {
                let p = pool(c.threads);
                zoo::time_ns(3, 1, || spgemm::par_spgemm(&p, a, b).nnz())
            };
            (work.max(1.0), ns)
        }
        Op::Encode => {
            let cfg = smash_config();
            let ns = if c.threads == 1 {
                zoo::time_ns(3, 1, || SmashMatrix::encode(a, cfg.clone()).nza().len())
            } else {
                let p = pool(c.threads);
                zoo::time_ns(3, 1, || par_csr_to_smash(&p, a, cfg.clone()).nza().len())
            };
            (nnz as f64, ns)
        }
        // The dynamic ops plan through the threshold tier only — the
        // candidate grid never emits them, so there is nothing to measure.
        Op::DynSpmv | Op::DynSpmmDense => {
            unreachable!("dynamic ops are not calibrated (threshold tier only)")
        }
    }
}

/// The structural (timing-free) skeleton: zoo profile lines plus the
/// `(matrix, op, format, threads, tile)` key of every expected row.
fn structure() -> (Vec<String>, BTreeSet<String>) {
    let mut matrix_lines = Vec::new();
    let mut row_keys = BTreeSet::new();
    for z in planner_zoo_cached() {
        matrix_lines.push(zoo::matrix_line(z.name, &z.profile()));
        for c in zoo::candidates() {
            row_keys.insert(format!(
                "{} {} {} {} {}",
                z.name, c.op, c.format, c.threads, c.tile
            ));
        }
    }
    (matrix_lines, row_keys)
}

fn planner_zoo_cached() -> Vec<ZooMatrix> {
    zoo::planner_zoo()
}

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read checked-in table {path}: {e}"))?;
    let parsed = Planner::from_table(&text).map_err(|e| format!("table does not parse: {e}"))?;
    let zoo_set = planner_zoo_cached();

    // Zoo coverage + profile drift.
    let want_names: BTreeSet<&str> = zoo_set.iter().map(|z| z.name).collect();
    let have_names: BTreeSet<&str> = parsed.zoo_names().collect();
    if want_names != have_names {
        return Err(format!(
            "zoo mismatch: table has {have_names:?}, build generates {want_names:?}"
        ));
    }
    for z in &zoo_set {
        let want = z.profile();
        let have = parsed.zoo_profile(z.name).expect("name checked above");
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-4 * (1.0 + a.abs());
        if want.rows != have.rows
            || want.cols != have.cols
            || want.nnz != have.nnz
            || want.row_max != have.row_max
            || !close(want.row_mean, have.row_mean)
            || !close(want.row_cv, have.row_cv)
            || !close(
                want.block_fill.unwrap_or(0.0),
                have.block_fill.unwrap_or(0.0),
            )
        {
            return Err(format!(
                "profile drift for '{}': table says {have:?}, build generates {want:?}",
                z.name
            ));
        }
    }

    // ISA provenance: informational, never fatal. Predicted *ratios*
    // between candidates transfer across SIMD tiers far better than
    // absolute nanoseconds, and CI runners legitimately differ from the
    // machine that measured the table — so a mismatch is reported (and
    // surfaced in every plan rationale) rather than failed.
    let active = smash_matrix::simd::active().name();
    match parsed.table_isa() {
        None => println!(
            "note: table records no `meta isa=` provenance (measured before the SIMD \
             dispatch layer); active tier here is {active}"
        ),
        Some(t) if t != active => println!(
            "note: table was measured under simd tier '{t}' but this host runs '{active}'; \
             plan rationales will flag the mismatch"
        ),
        Some(_) => {}
    }

    // Candidate coverage: exactly one measured row per grid entry.
    let (_, want_rows) = structure();
    let mut have_rows = BTreeSet::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with("row ") {
            continue;
        }
        let f: Vec<&str> = line.split_whitespace().collect();
        let val = |k: &str| {
            f.iter()
                .find_map(|p| p.strip_prefix(&format!("{k}=")))
                .unwrap_or("?")
        };
        let key = format!(
            "{} {} {} {} {}",
            f[1],
            val("op"),
            val("format"),
            val("threads"),
            val("tile")
        );
        if !have_rows.insert(key.clone()) {
            return Err(format!("duplicate calibration row: {key}"));
        }
    }
    if want_rows != have_rows {
        let missing: Vec<_> = want_rows.difference(&have_rows).collect();
        let extra: Vec<_> = have_rows.difference(&want_rows).collect();
        return Err(format!(
            "candidate grid drift: {} missing {missing:?}, {} extra {extra:?} — \
             regenerate with `cargo run --release -p smash-bench --bin planner_calibrate`",
            missing.len(),
            extra.len()
        ));
    }
    Ok(())
}

fn calibrate(path: &str) {
    let mut out = String::new();
    out.push_str("# smash-planner-calibration v1\n");
    out.push_str("# Measured cost model for smash_kernels::planner::Planner.\n");
    out.push_str(
        "# Regenerate: cargo run --release -p smash-bench --bin planner_calibrate\n\
         # Verify structure: … --bin planner_calibrate -- --check\n\
         # Format: docs/DISPATCH.md. work = logical work units (nnz / nnz*rhs /\n\
         # symbolic flops); ns = median wall-clock per call; the planner uses ns/work.\n",
    );
    // Record which SIMD tier the measurements ran under so `--check` and
    // plan rationales can flag tables calibrated on a different host class.
    out.push_str(&format!(
        "meta isa={}\n",
        smash_matrix::simd::active().name()
    ));
    for z in planner_zoo_cached() {
        let profile = z.profile();
        out.push('\n');
        out.push_str(&format!("# {} — {}\n", z.name, z.why));
        out.push_str(&zoo::matrix_line(z.name, &profile));
        out.push('\n');
        for c in zoo::candidates() {
            let (work, ns) = measure(&z, &c, ThreadPool::new);
            out.push_str(&zoo::row_line(z.name, &c, work, ns));
            out.push('\n');
            eprintln!(
                "  {:<20} {:<10} {:<6} x{} -> {:>12.1} ns ({:.3} ns/work)",
                z.name,
                c.op.name(),
                c.format.name(),
                c.threads,
                ns,
                ns / work
            );
        }
    }
    // The output must round-trip through the parser before we commit it.
    Planner::from_table(&out).expect("generated table must parse");
    std::fs::write(path, &out).expect("write calibration table");
    println!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_mode = args.iter().any(|a| a == "--check");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(default_table_path);
    if check_mode {
        match check(&path) {
            Ok(()) => println!("calibration table {path} is structurally current"),
            Err(e) => {
                eprintln!("stale calibration table: {e}");
                std::process::exit(1);
            }
        }
    } else {
        calibrate(&path);
    }
}
