//! Machine-readable validation snapshot for the dispatch planner.
//!
//! Writes `BENCH_planner.json` (path overridable as the first CLI
//! argument): for every zoo matrix it measures **all** SpMV candidates
//! (format × threads), asks the checked-in planner for its plan, and
//! records prediction vs. measurement. The process exits non-zero if
//! any of the planner's contracts fail on this host:
//!
//! * **Tolerance band** — the planner-chosen `(format, kernel, threads)`
//!   must measure within [`TOLERANCE`]× of the measured winner on every
//!   zoo matrix (the checked-in table was measured on another host, so
//!   exact agreement is asserted only for the self-calibrated check
//!   below).
//! * **Self-consistency** — a planner calibrated on *this run's*
//!   measurements must pick exactly the measured winner for every zoo
//!   matrix: the scoring logic itself is host-independent.
//! * **Bit-identity** — `Auto` dispatch through the planner returns
//!   bits identical to the explicit serial kernel of the format it
//!   selected; a plan never trades accuracy for speed.

use smash_bench::zoo::{self, Candidate};
use smash_core::{SmashConfig, SmashMatrix};
use smash_kernels::planner::{Format, Op, PlanRequest, Planner};
use smash_kernels::{native, Executor};
use smash_matrix::Bcsr;
use smash_parallel::{par_spmv_bcsr, par_spmv_csr, par_spmv_smash, ThreadPool};

/// Accepted slowdown of the planner's choice vs. the measured winner.
/// Covers cross-host drift: the checked-in table ships serial/parallel
/// ratios from the calibration host, and CI runners have different core
/// counts.
const TOLERANCE: f64 = 2.5;

/// Worker budget the plans are requested at (the calibration grid max).
const THREADS: usize = 4;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_planner.json".into());
    let planner = Planner::built_in();
    assert!(
        planner.is_calibrated(),
        "built-in calibration table is empty — regenerate it"
    );
    let exec = Executor::auto();
    let cfg = SmashConfig::row_major(&[2, 4]).expect("valid ratios");

    let spmv_grid: Vec<Candidate> = zoo::candidates()
        .into_iter()
        .filter(|c| c.op == Op::Spmv)
        .collect();

    let mut rows_json = Vec::new();
    let mut exact_agreements = 0usize;
    let zoo_set = zoo::planner_zoo();
    for z in &zoo_set {
        let a = &z.matrix;
        let profile = z.profile();
        let bcsr = Bcsr::from_csr(a, 2, 2).expect("2x2 blocking");
        let sm = SmashMatrix::encode(a, cfg.clone());
        let x = vec![0.5f64; a.cols()];
        let mut y = vec![0.0f64; a.rows()];
        let nnz = a.nnz().max(1);
        let reps = (2_000_000 / nnz).clamp(1, 50);

        // Measure every candidate.
        let mut measured: Vec<(Candidate, f64)> = Vec::new();
        for c in &spmv_grid {
            let ns = match (c.format, c.threads) {
                (Format::Csr, 1) => zoo::time_ns(5, reps, || {
                    native::spmv_csr(a, &x, &mut y);
                    y.len()
                }),
                (Format::Bcsr, 1) => zoo::time_ns(5, reps, || {
                    native::spmv_bcsr(&bcsr, &x, &mut y);
                    y.len()
                }),
                (Format::Smash, 1) => zoo::time_ns(5, reps, || {
                    native::spmv_smash(&sm, &x, &mut y);
                    y.len()
                }),
                (fmt, t) => {
                    let p = ThreadPool::new(t);
                    match fmt {
                        Format::Csr => zoo::time_ns(5, reps, || {
                            par_spmv_csr(&p, a, &x, &mut y);
                            y.len()
                        }),
                        Format::Bcsr => zoo::time_ns(5, reps, || {
                            par_spmv_bcsr(&p, &bcsr, &x, &mut y);
                            y.len()
                        }),
                        Format::Smash => zoo::time_ns(5, reps, || {
                            par_spmv_smash(&p, &sm, &x, &mut y);
                            y.len()
                        }),
                        Format::Dynamic => {
                            unreachable!("the candidate grid has no dynamic rows")
                        }
                    }
                }
            };
            measured.push((*c, ns));
        }
        let (best, best_ns) = measured
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(c, ns)| (*c, *ns))
            .expect("non-empty grid");

        // The checked-in planner's free-format choice.
        let plan = planner.plan(&profile, &PlanRequest::free(Op::Spmv, THREADS));
        let chosen_ns = measured
            .iter()
            .find(|(c, _)| c.format == plan.choice.format && c.threads == plan.choice.threads)
            .map(|(_, ns)| *ns)
            .expect("plan must name a calibrated candidate");
        let ratio = chosen_ns / best_ns;
        let exact = plan.choice.format == best.format && plan.choice.threads == best.threads;
        exact_agreements += exact as usize;
        assert!(
            ratio <= TOLERANCE,
            "{}: planner chose {} ({chosen_ns:.0} ns) but measured winner is \
             {} x{} ({best_ns:.0} ns) — {ratio:.2}x exceeds the {TOLERANCE}x band\n{}",
            z.name,
            plan.choice,
            best.format,
            best.threads,
            plan.rationale
        );

        // Self-consistency: a planner calibrated on THIS run's numbers
        // must pick the measured winner exactly.
        let mut table = String::from("# self-calibrated\n");
        table.push_str(&zoo::matrix_line(z.name, &profile));
        table.push('\n');
        for (c, ns) in &measured {
            table.push_str(&zoo::row_line(z.name, c, nnz as f64, *ns));
            table.push('\n');
        }
        let fresh = Planner::from_table(&table).expect("self table parses");
        let self_plan = fresh.plan(&profile, &PlanRequest::free(Op::Spmv, THREADS));
        assert!(
            self_plan.choice.format == best.format && self_plan.choice.threads == best.threads,
            "{}: self-calibrated planner chose {} but the measured winner is {} x{}",
            z.name,
            self_plan.choice,
            best.format,
            best.threads
        );

        // Bit-identity: Auto dispatch equals the explicit serial kernel
        // of the format the plan selected.
        let mut auto_y = vec![f64::NAN; a.rows()];
        let mut explicit = vec![0.0f64; a.rows()];
        match plan.choice.format {
            Format::Csr => {
                exec.spmv(a, &x, &mut auto_y);
                native::spmv_csr(a, &x, &mut explicit);
            }
            Format::Bcsr => {
                exec.spmv(&bcsr, &x, &mut auto_y);
                native::spmv_bcsr(&bcsr, &x, &mut explicit);
            }
            Format::Smash => {
                exec.spmv(&sm, &x, &mut auto_y);
                native::spmv_smash(&sm, &x, &mut explicit);
            }
            Format::Dynamic => unreachable!("the calibration table has no dynamic rows"),
        }
        assert_eq!(
            auto_y, explicit,
            "{}: Auto dispatch diverged from the explicit kernel",
            z.name
        );

        let measured_json: Vec<String> = measured
            .iter()
            .map(|(c, ns)| {
                format!(
                    "{{\"format\": \"{}\", \"threads\": {}, \"ns\": {ns:.0}}}",
                    c.format, c.threads
                )
            })
            .collect();
        rows_json.push(format!(
            "    {{\"matrix\": \"{}\", \"nnz\": {}, \"fill8\": {:.3}, \
             \"planned\": \"{}\", \"predicted_ns\": {:.0}, \"calibrated\": {}, \
             \"winner\": \"{} x{}\", \"winner_ns\": {best_ns:.0}, \
             \"chosen_ns\": {chosen_ns:.0}, \"ratio_to_winner\": {ratio:.2}, \
             \"exact_agreement\": {exact},\n      \"measured\": [{}]}}",
            z.name,
            a.nnz(),
            profile.block_fill.unwrap_or(0.0),
            plan.choice,
            plan.score,
            plan.calibrated,
            best.format,
            best.threads,
            measured_json.join(", ")
        ));
    }

    let json = format!(
        "{{\n  \"workload\": \"free-format SpMV planning over the zoo\",\n  \
         \"tolerance_band\": {TOLERANCE},\n  \
         \"exact_agreement\": \"{exact_agreements}/{}\",\n  \"zoo\": [\n{}\n  ]\n}}\n",
        zoo_set.len(),
        rows_json.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("{json}");
    println!("wrote {out_path}");
}
