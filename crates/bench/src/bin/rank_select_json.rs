//! Machine-readable perf snapshot for the rank/select indexing layer.
//!
//! Writes `BENCH_rank_select.json` (path overridable as the first CLI
//! argument) with wall-clock throughput and peak-auxiliary-memory
//! numbers, so CI archives a perf trajectory future PRs can compare
//! against. The process exits non-zero if the two headline claims of the
//! indexed-access refactor do not hold on this host:
//!
//! * indexed `RankIndex::rank` beats the O(n) `Bitmap::rank` word scan;
//! * SMASH SpMM auxiliary memory (directory + per-line offsets) is
//!   sublinear in the logical Bitmap-0 size.

use smash_core::{Bitmap, RankIndex, SmashConfig, SmashMatrix};
use smash_kernels::native::spmm_smash;
use smash_kernels::test_vector;
use smash_matrix::generators;
use smash_parallel::{par_spmv_smash, ThreadPool};
use std::time::Instant;

/// Median-of-5 wall-clock nanoseconds for `f`, amortized over `reps`
/// inner repetitions.
fn time_ns<F: FnMut() -> usize>(reps: usize, mut f: F) -> f64 {
    let mut samples = Vec::with_capacity(5);
    let mut sink = 0usize;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..reps {
            sink = sink.wrapping_add(f());
        }
        samples.push(t.elapsed().as_nanos() as f64 / reps as f64);
    }
    std::hint::black_box(sink);
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_rank_select.json".into());

    // --- Rank: indexed vs O(n) scan over a 4 Mi-bit map. -----------------
    let bits = 1 << 22;
    let mut bm = Bitmap::zeros(bits);
    for i in (0..bits).step_by(3) {
        bm.set(i, true);
    }
    let idx = RankIndex::build(&bm);
    let probes: Vec<usize> = (1..=64).map(|i| i * (bits / 64) - 7).collect();
    let indexed_rank_ns = time_ns(200, || probes.iter().map(|&p| idx.rank(&bm, p)).sum());
    let scan_rank_ns = time_ns(3, || probes.iter().map(|&p| bm.rank(p)).sum());
    let rank_speedup = scan_rank_ns / indexed_rank_ns;

    // --- Select: indexed vs iterator scan. -------------------------------
    let ones = idx.ones();
    let ks: Vec<usize> = (1..=64).map(|i| i * (ones / 64) - 1).collect();
    let indexed_select_ns = time_ns(200, || {
        ks.iter().map(|&k| idx.select(&bm, k).unwrap()).sum()
    });
    let scan_select_ns = time_ns(3, || {
        ks.iter().map(|&k| bm.iter_ones().nth(k).unwrap()).sum()
    });

    // --- Row seek: directory cursor vs full expansion. -------------------
    let a = generators::clustered(4096, 4096, 120_000, 6, 17);
    let sm = SmashMatrix::encode(
        &a,
        SmashConfig::row_major(&[2, 4, 16]).expect("paper config"),
    );
    let bpl = sm.blocks_per_line();
    let rows: Vec<usize> = (0..16).map(|i| (i * 509) % 4096).collect();
    let seek_directory_ns = time_ns(50, || {
        rows.iter()
            .map(|&r| sm.line_cursor(r).map(|(o, l)| o + l).sum::<usize>())
            .sum()
    });
    let seek_expand_ns = time_ns(2, || {
        rows.iter()
            .map(|&r| {
                let full = sm.full_bitmap0();
                full.iter_ones()
                    .skip_while(|&l| l < r * bpl)
                    .take_while(|&l| l < (r + 1) * bpl)
                    .sum::<usize>()
            })
            .sum()
    });

    // --- SpMM throughput + peak auxiliary memory. ------------------------
    // Aux memory of the indexed path: both directories plus the flattened
    // per-line offset arrays (O(nnz-blocks + bits / 512)); the seed path
    // materialized both logical Bitmap-0s on top of the same offsets
    // (O(logical bits)). Fixing nnz while growing the dense size shows
    // the sublinear scaling directly.
    let spmm_aux = |n: usize| -> (usize, usize, SmashMatrix<f64>, SmashMatrix<f64>) {
        let sa = SmashMatrix::encode(
            &generators::uniform(n, n, 10_000, 7),
            SmashConfig::row_major(&[2]).expect("flat"),
        );
        let sb = SmashMatrix::encode(
            &generators::uniform(n, n, 10_000, 8),
            SmashConfig::col_major(&[2]).expect("flat"),
        );
        let logical_bits = sa.hierarchy().logical_bits(0) + sb.hierarchy().logical_bits(0);
        let aux = sa.directory().aux_bytes()
            + sb.directory().aux_bytes()
            + (sa.num_blocks() + sb.num_blocks()) * std::mem::size_of::<u32>();
        (logical_bits, aux, sa, sb)
    };
    let (logical_bits_small, aux_small, _, _) = spmm_aux(1024);
    let (logical_bits, aux_indexed_bytes, sa, sb) = spmm_aux(4096);
    let aux_expansion_bytes = logical_bits.div_ceil(8)
        + (sa.num_blocks() + sb.num_blocks()) * std::mem::size_of::<u32>()
        + (sa.line_count() + sb.line_count()) * std::mem::size_of::<Vec<u32>>();
    let t = Instant::now();
    let c = spmm_smash(&sa, &sb);
    let spmm_ns = t.elapsed().as_nanos() as f64;
    let spmm_nnz_per_s = c.nnz() as f64 / (spmm_ns / 1e9);

    // --- Directory-backed parallel SpMV throughput. ----------------------
    let x = test_vector(sm.cols());
    let mut y = vec![0.0f64; sm.rows()];
    let pool = ThreadPool::new(4);
    let spmv_ns = time_ns(10, || {
        par_spmv_smash(&pool, &sm, &x, &mut y);
        y.len()
    });
    let spmv_nnz_per_s = a.nnz() as f64 / (spmv_ns / 1e9);

    let json = format!(
        "{{\n  \"bitmap_bits\": {bits},\n  \"indexed_rank_ns\": {indexed_rank_ns:.1},\n  \
         \"scan_rank_ns\": {scan_rank_ns:.1},\n  \"rank_speedup\": {rank_speedup:.2},\n  \
         \"indexed_select_ns\": {indexed_select_ns:.1},\n  \"scan_select_ns\": {scan_select_ns:.1},\n  \
         \"row_seek_directory_ns\": {seek_directory_ns:.1},\n  \
         \"row_seek_expand_ns\": {seek_expand_ns:.1},\n  \
         \"spmm_nnz_per_s\": {spmm_nnz_per_s:.0},\n  \
         \"par_spmv_smash_nnz_per_s\": {spmv_nnz_per_s:.0},\n  \
         \"spmm_logical_bitmap_bits\": {logical_bits},\n  \
         \"spmm_aux_indexed_bytes\": {aux_indexed_bytes},\n  \
         \"spmm_aux_expansion_bytes\": {aux_expansion_bytes},\n  \
         \"spmm_logical_bitmap_bits_small\": {logical_bits_small},\n  \
         \"spmm_aux_indexed_bytes_small\": {aux_small},\n  \
         \"rank_index_aux_bytes\": {}\n}}\n",
        idx.aux_bytes()
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("{json}");
    println!("wrote {out_path}");

    assert!(
        rank_speedup > 1.0,
        "indexed rank ({indexed_rank_ns:.0} ns) must beat the O(n) scan ({scan_rank_ns:.0} ns)"
    );
    assert!(
        aux_indexed_bytes < logical_bits / 8,
        "SpMM aux memory ({aux_indexed_bytes} B) must stay below the expanded \
         logical bitmap alone ({} B)",
        logical_bits / 8
    );
    // Sublinear scaling: 16x the dense area (same nnz) must grow aux
    // memory far less than 16x.
    let bits_growth = logical_bits as f64 / logical_bits_small as f64;
    let aux_growth = aux_indexed_bytes as f64 / aux_small as f64;
    assert!(
        aux_growth < bits_growth / 2.0,
        "aux grew {aux_growth:.1}x for a {bits_growth:.1}x larger logical bitmap"
    );
    assert!(
        seek_directory_ns < seek_expand_ns,
        "directory row seek must beat full expansion"
    );
}
