//! Machine-readable perf snapshot for the runtime-dispatched SIMD tiers.
//!
//! Writes `BENCH_simd.json` (path overridable as the first CLI argument)
//! with per-ISA wall-clock numbers for the three vectorized kernel
//! families — the CSR `row_dot` (via `spmv_csr_opt`), the SMASH
//! `block_dot` (via `spmv_smash`), and the dense RHS axpy tiles (via
//! `spmm_dense_smash` at the 8-wide calibration batch) — on a structurally
//! diverse slice of the planner zoo, in both precisions. Each kernel runs
//! once under every ISA the host supports by forcing the dispatch layer
//! through `smash_matrix::simd::set_override` (the in-process twin of the
//! `SMASH_SIMD` env override).
//!
//! The process exits non-zero if the vector tiers do not pay for
//! themselves on this host:
//!
//! * on any vector-capable host, the best vector tier must at least match
//!   scalar (speedup ≥ 1.0 after a small noise allowance) for every
//!   kernel family on at least one zoo matrix, and
//! * on an AVX2 host specifically, `f32` row-dot and axpy-tile SpMM must
//!   each clear 1.5× over the scalar emulation on at least one zoo
//!   matrix — the headline claim of the dispatch layer.
//!
//! All tiers produce bit-identical outputs (pinned by
//! `tests/simd_identity.rs`); this snapshot is about time only.

use smash_bench::zoo::{self, planner_zoo};
use smash_core::{SmashConfig, SmashMatrix};
use smash_kernels::native;
use smash_matrix::simd::{self, Isa};
use smash_matrix::{generators, Csr, Dense, Scalar};

/// RHS width the axpy-tile measurement leads with: one full register tile.
const AXPY_RHS: usize = 8;

/// Times `f` with the dispatch layer forced onto `isa`.
fn time_under<F: FnMut() -> usize>(isa: Isa, samples: usize, reps: usize, f: F) -> f64 {
    simd::set_override(Some(isa));
    let ns = zoo::time_ns(samples, reps, f);
    simd::set_override(None);
    ns
}

/// One kernel family timed under every supported ISA; returns
/// `(scalar_ns, [(isa, ns, speedup)])` plus the JSON fragment.
struct KernelRow {
    json: String,
    /// Best vector speedup over scalar (1.0 exactly if the host has no
    /// vector tier — the scalar row compares to itself).
    best_vector_speedup: f64,
    /// AVX2 speedup over scalar, if the host supports AVX2.
    avx2_speedup: Option<f64>,
}

fn measure_kernel<F: FnMut() -> usize>(
    matrix: &str,
    kernel: &str,
    ty: &str,
    samples: usize,
    reps: usize,
    mut f: F,
) -> KernelRow {
    let supported: Vec<Isa> = Isa::ALL.into_iter().filter(|i| i.is_supported()).collect();
    let scalar_ns = time_under(Isa::Scalar, samples, reps, &mut f);
    let mut best_vector_speedup = 1.0f64;
    let mut avx2_speedup = None;
    let mut tiers = Vec::new();
    for isa in supported {
        let ns = if isa == Isa::Scalar {
            scalar_ns
        } else {
            time_under(isa, samples, reps, &mut f)
        };
        let speedup = scalar_ns / ns;
        if isa != Isa::Scalar {
            best_vector_speedup = best_vector_speedup.max(speedup);
        }
        if isa == Isa::Avx2 {
            avx2_speedup = Some(speedup);
        }
        tiers.push(format!(
            "{{\"isa\": \"{}\", \"ns\": {ns:.0}, \"speedup_vs_scalar\": {speedup:.2}}}",
            isa.name()
        ));
    }
    let json = format!(
        "    {{\"matrix\": \"{matrix}\", \"kernel\": \"{kernel}\", \"type\": \"{ty}\", \
         \"tiers\": [{}]}}",
        tiers.join(", ")
    );
    KernelRow {
        json,
        best_vector_speedup,
        avx2_speedup,
    }
}

/// All three kernel families on one matrix in one precision.
fn measure_matrix<T: Scalar>(name: &str, a: &Csr<T>, ty: &str, rows_json: &mut Vec<KernelRow>) {
    let sm = SmashMatrix::encode(
        a,
        SmashConfig::row_major(&[2, 4, 16]).expect("paper config"),
    );
    let x: Vec<T> = (0..a.cols())
        .map(|c| T::from_f64(0.25 + (c % 7) as f64 * 0.125))
        .collect();
    let b = generators::dense_batch::<T>(a.cols(), AXPY_RHS, 5);
    let mut y = vec![T::ZERO; a.rows()];
    let mut c = Dense::zeros(a.rows(), AXPY_RHS);

    rows_json.push(measure_kernel(name, "row_dot_spmv", ty, 5, 4, || {
        native::spmv_csr_opt(a, &x, &mut y);
        y.len()
    }));
    rows_json.push(measure_kernel(name, "block_dot_spmv", ty, 5, 4, || {
        native::spmv_smash(&sm, &x, &mut y);
        y.len()
    }));
    rows_json.push(measure_kernel(name, "axpy_tile_spmm", ty, 5, 2, || {
        native::spmm_dense_smash(&sm, &b, &mut c);
        c.cols()
    }));
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_simd.json".into());

    // A structurally diverse slice of the planner zoo: banded (short
    // rows), clustered (dense runs → long contiguous block dots), and
    // full-fill blocky (SMASH's best case, axpy-dominated).
    let picks = ["mid-banded", "large-clustered", "blocky-full-fill"];
    let zoo: Vec<_> = planner_zoo()
        .into_iter()
        .filter(|z| picks.contains(&z.name))
        .collect();
    assert_eq!(zoo.len(), picks.len(), "zoo picks must all exist");

    let supported: Vec<&str> = Isa::ALL
        .into_iter()
        .filter(|i| i.is_supported())
        .map(|i| i.name())
        .collect();
    let has_vector = supported.iter().any(|s| *s != "scalar");
    let has_avx2 = Isa::Avx2.is_supported();

    let mut rows = Vec::new();
    for z in &zoo {
        measure_matrix(z.name, &z.matrix, "f64", &mut rows);
        measure_matrix(z.name, &z.matrix.cast::<f32>(), "f32", &mut rows);
    }

    let json = format!(
        "{{\n  \"detected\": \"{}\",\n  \"supported\": [{}],\n  \"results\": [\n{}\n  ]\n}}\n",
        simd::detected().name(),
        supported
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", "),
        rows.iter()
            .map(|r| r.json.clone())
            .collect::<Vec<_>>()
            .join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("{json}");
    println!("wrote {out_path}");

    if has_vector {
        // Every kernel family must at least break even somewhere (0.95
        // absorbs timer noise on the small matrices).
        let best = rows
            .iter()
            .map(|r| r.best_vector_speedup)
            .fold(f64::INFINITY, f64::min);
        assert!(
            rows.iter().any(|r| r.best_vector_speedup >= 0.95),
            "no kernel reached parity with scalar (worst best-tier {best:.2}x)"
        );
        for (i, r) in rows.iter().enumerate() {
            assert!(
                r.best_vector_speedup >= 0.75,
                "row {i} regressed hard under every vector tier \
                 ({:.2}x): {}",
                r.best_vector_speedup,
                r.json
            );
        }
    }
    if has_avx2 {
        // Headline: f32 row-dot and axpy tiles each clear 1.5x over the
        // scalar emulation on at least one zoo matrix.
        for kernel in ["row_dot_spmv", "axpy_tile_spmm"] {
            let best = rows
                .iter()
                .filter(|r| {
                    r.json.contains(&format!("\"kernel\": \"{kernel}\""))
                        && r.json.contains("\"type\": \"f32\"")
                })
                .filter_map(|r| r.avx2_speedup)
                .fold(0.0f64, f64::max);
            assert!(
                best >= 1.5,
                "f32 {kernel} under AVX2 peaked at {best:.2}x over scalar; \
                 the dispatch layer must clear 1.5x on at least one zoo matrix"
            );
        }
    }
    println!(
        "simd snapshot OK (detected tier: {})",
        simd::detected().name()
    );
}
