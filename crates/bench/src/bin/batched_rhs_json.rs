//! Machine-readable perf snapshot for the batched right-hand-side SpMM.
//!
//! Writes `BENCH_batched_rhs.json` (path overridable as the first CLI
//! argument) with blocked-vs-per-column-SpMV wall-clock numbers across a
//! sweep of batch widths, so CI archives the speedup curve. The process
//! exits non-zero if the headline claim of the batched subsystem does not
//! hold on this host:
//!
//! * the column-tiled `spmm_dense_csr` beats the loop of independent
//!   per-column SpMVs at ≥ 8 right-hand sides.
//!
//! It also re-verifies, on real data, that the batched output is
//! bit-identical to the per-column loop — the determinism guarantee the
//! speedup must never trade away. Each width is additionally timed with
//! the SIMD dispatch layer forced to its scalar emulation
//! (`smash_matrix::simd`), so the snapshot separates what column tiling
//! buys from what vectorizing the tile bodies buys on top.

use smash_core::{SmashConfig, SmashMatrix};
use smash_kernels::native;
use smash_matrix::simd::{self, Isa};
use smash_matrix::{generators, Dense};
use smash_parallel::{par_spmm_dense_csr, ThreadPool};
use std::time::Instant;

/// Median-of-5 wall-clock nanoseconds for `f`, amortized over `reps`
/// inner repetitions.
fn time_ns<F: FnMut() -> usize>(reps: usize, mut f: F) -> f64 {
    let mut samples = Vec::with_capacity(5);
    let mut sink = 0usize;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..reps {
            sink = sink.wrapping_add(f());
        }
        samples.push(t.elapsed().as_nanos() as f64 / reps as f64);
    }
    std::hint::black_box(sink);
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[2]
}

fn test_batch(rows: usize, cols: usize) -> Dense<f64> {
    generators::dense_batch(rows, cols, 5)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_batched_rhs.json".into());

    // A serving-sized operand: the matrix no longer fits in L1/L2, so
    // re-streaming it per query is the dominant cost the batching removes.
    let a = generators::clustered(4096, 4096, 400_000, 6, 42);
    let sm = SmashMatrix::encode(
        &a,
        SmashConfig::row_major(&[2, 4, 16]).expect("paper config"),
    );
    let pool = ThreadPool::new(4);

    let widths = [1usize, 2, 4, 8, 16, 32];
    let mut rows_json = Vec::new();
    let mut speedup_at_8 = 0.0f64;
    for &n in &widths {
        let b = test_batch(a.cols(), n);
        let cols: Vec<Vec<f64>> = (0..n).map(|j| b.col(j)).collect();
        let mut y = vec![0.0f64; a.rows()];
        let mut c = Dense::zeros(a.rows(), n);

        let per_column_ns = time_ns(3, || {
            for x in &cols {
                native::spmv_csr(&a, x, &mut y);
            }
            y.len()
        });
        let blocked_ns = time_ns(3, || {
            native::spmm_dense_csr(&a, &b, &mut c);
            c.cols()
        });
        // The same tiled kernel with the dispatch layer pinned to the
        // scalar lane-order emulation: isolates the vector-body win.
        simd::set_override(Some(Isa::Scalar));
        let blocked_scalar_isa_ns = time_ns(3, || {
            native::spmm_dense_csr(&a, &b, &mut c);
            c.cols()
        });
        simd::set_override(None);
        let smash_ns = time_ns(3, || {
            native::spmm_dense_smash(&sm, &b, &mut c);
            c.cols()
        });
        let parallel_ns = time_ns(3, || {
            par_spmm_dense_csr(&pool, &a, &b, &mut c);
            c.cols()
        });

        // Determinism spot check on real data: every batched column must
        // equal its independent SpMV bit for bit.
        native::spmm_dense_csr(&a, &b, &mut c);
        for (j, x) in cols.iter().enumerate() {
            native::spmv_csr(&a, x, &mut y);
            assert_eq!(c.col(j), y, "batched column {j} diverged at width {n}");
        }

        let speedup = per_column_ns / blocked_ns;
        let simd_speedup = blocked_scalar_isa_ns / blocked_ns;
        if n == 8 {
            speedup_at_8 = speedup;
        }
        rows_json.push(format!(
            "    {{\"rhs\": {n}, \"per_column_spmv_ns\": {per_column_ns:.0}, \
             \"spmm_dense_csr_ns\": {blocked_ns:.0}, \
             \"spmm_dense_csr_scalar_isa_ns\": {blocked_scalar_isa_ns:.0}, \
             \"spmm_dense_smash_ns\": {smash_ns:.0}, \
             \"par_spmm_dense_csr_ns\": {parallel_ns:.0}, \
             \"blocked_speedup\": {speedup:.2}, \
             \"simd_speedup\": {simd_speedup:.2}}}"
        ));
        // Sanity only: the vector tiles must not regress badly against
        // their own scalar emulation (exact threshold is simd_json's job).
        assert!(
            simd_speedup > 0.5,
            "vectorized tiles {simd_speedup:.2}x vs forced-scalar at width {n}"
        );
    }

    let json = format!(
        "{{\n  \"matrix\": \"clustered 4096x4096, nnz {}\",\n  \
         \"simd_isa\": \"{}\",\n  \
         \"blocked_speedup_at_8_rhs\": {speedup_at_8:.2},\n  \"sweep\": [\n{}\n  ]\n}}\n",
        a.nnz(),
        simd::active().name(),
        rows_json.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("{json}");
    println!("wrote {out_path}");

    assert!(
        speedup_at_8 > 1.0,
        "column-tiled SpMM ({speedup_at_8:.2}x) must beat the per-column \
         SpMV loop at 8 right-hand sides"
    );
}
