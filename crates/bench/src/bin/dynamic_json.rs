//! Machine-readable perf snapshot for the dynamic-matrix layer.
//!
//! Writes `BENCH_dynamic.json` (path overridable as the first CLI
//! argument): for several delta ratios it times absorbing an update
//! batch through the `DynamicMatrix` overlay (apply + one merged SpMV)
//! against absorbing it by a full from-scratch rebuild (merge + plain
//! SpMV), and runs the incremental-PageRank workload warm vs. cold.
//! The process exits non-zero if either headline claim fails on this
//! host:
//!
//! * **overlay wins small updates** — at every delta ratio ≤ 1% of
//!   nnz, overlay apply + merged read is faster than the full rebuild;
//! * **warm starts don't regress** — incremental PageRank resumed from
//!   the previous ranks needs no more iterations than a cold solve,
//!   while converging to the same fixed point.
//!
//! It also re-verifies, on the benchmarked data, that the merged view
//! is triplet-exact against the rebuild — the bit-identity contract
//! the speedup must never trade away.

use smash_core::DynamicMatrix;
use smash_graph::{pagerank_power, uniform_ranks, Graph, IncrementalPageRank};
use smash_matrix::{generators, spmv_rows, Csr};
use std::time::Instant;

/// Median-of-5 wall-clock nanoseconds for `f`, amortized over `reps`
/// inner repetitions.
fn time_ns<F: FnMut() -> usize>(reps: usize, mut f: F) -> f64 {
    let mut samples = Vec::with_capacity(5);
    let mut sink = 0usize;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..reps {
            sink = sink.wrapping_add(f());
        }
        samples.push(t.elapsed().as_nanos() as f64 / reps as f64);
    }
    std::hint::black_box(sink);
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[2]
}

/// Deterministic update batch: `k` overwrites spread over the matrix.
fn batch(a: &Csr<f64>, k: usize) -> Vec<(usize, usize, f64)> {
    (0..k)
        .map(|i| {
            let r = (i * 2654435761) % a.rows();
            let c = (i * 40503 + 7) % a.cols();
            (r, c, (i % 17) as f64 - 8.0)
        })
        .collect()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_dynamic.json".into());
    let a = generators::clustered(2048, 2048, 120_000, 6, 42);
    let x = vec![1.0f64; a.cols()];
    let mut y = vec![0.0f64; a.rows()];

    let mut ratio_json = Vec::new();
    for &permille in &[1usize, 5, 10, 100] {
        let k = (a.nnz() * permille / 1000).max(1);
        let muts = batch(&a, k);

        // Bit-identity on this exact workload before timing it.
        let mut m = DynamicMatrix::from_csr(a.clone());
        for &(r, c, v) in &muts {
            m.set(r, c, v);
        }
        let rebuilt = m.merged_csr();
        let (mut via_overlay, mut via_rebuild) = (vec![0.0; a.rows()], vec![0.0; a.rows()]);
        spmv_rows(&m, &x, &mut via_overlay);
        spmv_rows(&rebuilt, &x, &mut via_rebuild);
        assert_eq!(
            via_overlay, via_rebuild,
            "merged view diverged from the rebuild at {permille} permille"
        );

        // Overlay path: absorb the batch into the overlay, one merged
        // read. The rebuild path pays the same applies plus the full
        // O(nnz) merge before its (cheaper) plain read.
        let overlay_ns = time_ns(3, || {
            let mut m = DynamicMatrix::from_csr(a.clone());
            for &(r, c, v) in &muts {
                m.set(r, c, v);
            }
            spmv_rows(&m, &x, &mut y);
            y.len()
        });
        let rebuild_ns = time_ns(3, || {
            let mut m = DynamicMatrix::from_csr(a.clone());
            for &(r, c, v) in &muts {
                m.set(r, c, v);
            }
            let rebuilt = m.merged_csr();
            spmv_rows(&rebuilt, &x, &mut y);
            y.len()
        });
        let speedup = rebuild_ns / overlay_ns;
        if permille <= 10 {
            assert!(
                speedup > 1.0,
                "overlay apply ({overlay_ns:.0} ns) must beat the full rebuild \
                 ({rebuild_ns:.0} ns) at {permille} permille deltas, got {speedup:.2}x"
            );
        }
        ratio_json.push(format!(
            "    {{\"delta_permille\": {permille}, \"deltas\": {k}, \
             \"overlay_apply_spmv_ns\": {overlay_ns:.0}, \
             \"rebuild_spmv_ns\": {rebuild_ns:.0}, \
             \"overlay_speedup\": {speedup:.2}}}"
        ));
    }

    // Incremental PageRank: warm restart vs. cold solve after a batch
    // of edge insertions. A road network, because every vertex has
    // out-edges: with no dangling mass leak, both trajectories decay at
    // the damping factor and the warm start's closer initial residual
    // translates directly into fewer iterations. (On dangling-heavy
    // graphs the cold-start error drains through the dangling columns
    // faster than the recurrent-region perturbation a warm start
    // carries, and the iteration comparison becomes meaningless.)
    let g: Graph<f64> = smash_graph::generators::road_network(4096, 8192, 7);
    let tol = 1e-8;
    let mut pr = IncrementalPageRank::new(&g, 0.85, tol, 1000);
    let cold = pr.solve();
    let mut inserted = 0usize;
    for i in 0..64usize {
        let u = (i * 2654435761) % 4096;
        let v = (i * 40503 + 13) % 4096;
        inserted += pr.add_edge(u, v) as usize;
    }
    assert!(inserted > 0, "every probe edge collided with the graph");
    let warm = pr.solve();
    let cold_after = pagerank_power(
        &pr.snapshot().transition_matrix(),
        &uniform_ranks::<f64>(pr.vertices()),
        0.85,
        tol,
        1000,
    );
    assert!(
        warm.iterations <= cold_after.iterations,
        "warm restart took {} iterations, cold solve {}",
        warm.iterations,
        cold_after.iterations
    );
    for (w, c) in warm.ranks.iter().zip(&cold_after.ranks) {
        assert!(
            (w - c).abs() < 20.0 * tol,
            "warm and cold solves disagree: {w} vs {c}"
        );
    }

    let json = format!(
        "{{\n  \"workload\": \"dynamic-matrix updates and incremental PageRank\",\n  \
         \"matrix\": \"clustered 2048x2048 nnz {}\",\n  \"delta_ratios\": [\n{}\n  ],\n  \
         \"pagerank\": {{\"vertices\": {}, \"edges_inserted\": {inserted}, \
         \"cold_iterations\": {}, \"warm_iterations\": {}, \
         \"cold_after_iterations\": {}}}\n}}\n",
        a.nnz(),
        ratio_json.join(",\n"),
        pr.vertices(),
        cold.iterations,
        warm.iterations,
        cold_after.iterations
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("{json}");
    println!("wrote {out_path}");
}
