//! Machine-readable perf snapshot for the Gustavson SpGEMM engine.
//!
//! Writes `BENCH_spgemm.json` (path overridable as the first CLI
//! argument) with Gustavson-vs-inner-product wall-clock numbers for
//! `A · A` and `A · Aᵀ` over a zoo of power-law matrices — the
//! workload where per-row output density varies by orders of magnitude,
//! so the engine's per-row dense/hash accumulator choice actually
//! exercises both paths. The process exits non-zero if the headline
//! claim does not hold on this host:
//!
//! * row-wise Gustavson beats the `spmm_csr_opt` inner-product baseline
//!   on `A · A` for **every** matrix in the zoo.
//!
//! It also re-verifies, on real data, that the parallel engine is
//! bit-identical to the serial one and that both match the
//! `Csr::spmm_inner` oracle exactly — the determinism guarantee the
//! speedup must never trade away.

use smash_kernels::{native, spgemm};
use smash_matrix::{generators, Csr};
use smash_parallel::ThreadPool;
use std::time::Instant;

/// Median-of-5 wall-clock nanoseconds for `f`, amortized over `reps`
/// inner repetitions.
fn time_ns<F: FnMut() -> usize>(reps: usize, mut f: F) -> f64 {
    let mut samples = Vec::with_capacity(5);
    let mut sink = 0usize;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..reps {
            sink = sink.wrapping_add(f());
        }
        samples.push(t.elapsed().as_nanos() as f64 / reps as f64);
    }
    std::hint::black_box(sink);
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[2]
}

fn zoo() -> Vec<(String, Csr<f64>)> {
    [
        (768usize, 9_000usize, 1.2f64, 31u64),
        (1024, 12_000, 1.4, 32),
        (1024, 20_000, 1.6, 33),
        (1536, 18_000, 1.3, 34),
    ]
    .into_iter()
    .map(|(n, nnz, alpha, seed)| {
        (
            format!("power_law {n}x{n} nnz {nnz} alpha {alpha}"),
            generators::power_law(n, n, nnz, alpha, seed),
        )
    })
    .collect()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_spgemm.json".into());
    let pool = ThreadPool::new(4);

    let mut rows_json = Vec::new();
    let mut min_speedup = f64::INFINITY;
    for (label, a) in zoo() {
        let a_csc = a.to_csc();
        let at = a.transpose();
        let at_csc = at.to_csc();

        // Determinism re-check on real data: parallel == serial == oracle,
        // triplet-exact.
        let serial = spgemm::spgemm(&a, &a);
        assert_eq!(
            spgemm::par_spgemm(&pool, &a, &a),
            serial,
            "parallel Gustavson diverged from serial on {label}"
        );
        assert_eq!(
            serial.to_coo().entries(),
            a.spmm_inner(&a_csc).expect("conforming").entries(),
            "Gustavson diverged from the inner-product oracle on {label}"
        );

        let gustavson_ns = time_ns(3, || spgemm::spgemm(&a, &a).nnz());
        let gustavson_par_ns = time_ns(3, || spgemm::par_spgemm(&pool, &a, &a).nnz());
        let csr_opt_ns = time_ns(3, || native::spmm_csr_opt(&a, &a_csc).nnz());
        let aat_gustavson_ns = time_ns(3, || spgemm::spgemm(&a, &at).nnz());
        let aat_csr_opt_ns = time_ns(3, || native::spmm_csr_opt(&a, &at_csc).nnz());

        let speedup = csr_opt_ns / gustavson_ns;
        min_speedup = min_speedup.min(speedup);
        rows_json.push(format!(
            "    {{\"matrix\": \"{label}\", \"out_nnz\": {}, \
             \"aa_gustavson_ns\": {gustavson_ns:.0}, \
             \"aa_gustavson_par4_ns\": {gustavson_par_ns:.0}, \
             \"aa_csr_opt_ns\": {csr_opt_ns:.0}, \
             \"aa_gustavson_speedup\": {speedup:.2}, \
             \"aat_gustavson_ns\": {aat_gustavson_ns:.0}, \
             \"aat_csr_opt_ns\": {aat_csr_opt_ns:.0}}}",
            serial.nnz()
        ));
    }

    let json = format!(
        "{{\n  \"workload\": \"A*A and A*At over the power-law zoo\",\n  \
         \"min_aa_gustavson_speedup\": {min_speedup:.2},\n  \"zoo\": [\n{}\n  ]\n}}\n",
        rows_json.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("{json}");
    println!("wrote {out_path}");

    assert!(
        min_speedup > 1.0,
        "row-wise Gustavson ({min_speedup:.2}x at worst) must beat the \
         spmm_csr_opt inner-product baseline on A*A across the zoo"
    );
}
