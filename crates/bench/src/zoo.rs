//! The **matrix zoo**: the structurally diverse, deterministic matrix
//! set the planner is calibrated on (`planner_calibrate`) and validated
//! against (`planner_json` → `BENCH_planner.json`).
//!
//! One spec per structure class the dispatch decision is sensitive to:
//! scattered vs. clustered non-zeros (block fill), balanced vs.
//! power-law row lengths (row-length CV), large vs. tiny work, square
//! vs. tall-skinny shapes. Everything is seeded, so every host
//! regenerates bit-identical matrices — the calibration table's profile
//! lines are reproducible and `planner_calibrate --check` can diff them
//! exactly.
//!
//! The candidate grid ([`candidates`]) is the other half of the
//! contract: every `(op × format × threads)` combination listed here
//! gets one measured row per zoo matrix in the calibration table.
//! Adding a kernel to the planner's vocabulary means adding its
//! [`Candidate`] here and regenerating the table — see
//! `docs/DISPATCH.md`.

use smash_kernels::planner::{Format, MatrixProfile, Op};
use smash_matrix::{generators, locality, Csr};

/// A named, deterministically generated zoo member.
#[derive(Debug)]
pub struct ZooMatrix {
    /// Stable name, used as the key in the calibration table.
    pub name: &'static str,
    /// What the spec stresses, for docs and reports.
    pub why: &'static str,
    /// The generated matrix.
    pub matrix: Csr<f64>,
}

impl ZooMatrix {
    /// The full planner profile (including the `O(nnz)` block-fill
    /// feature) of this zoo member.
    pub fn profile(&self) -> MatrixProfile {
        MatrixProfile::of_csr(&self.matrix).with_block_fill(&self.matrix)
    }
}

/// Generates the planner zoo. Deterministic: same matrices on every
/// host and every call.
pub fn planner_zoo() -> Vec<ZooMatrix> {
    vec![
        ZooMatrix {
            name: "tiny-uniform",
            why: "dispatch overhead floor: any pool dispatch loses",
            matrix: generators::uniform(64, 64, 500, 11),
        },
        ZooMatrix {
            name: "small-uniform",
            why: "just below the legacy parallel threshold",
            matrix: generators::uniform(256, 256, 3_000, 12),
        },
        ZooMatrix {
            name: "mid-banded",
            why: "balanced rows, moderate work, cache-friendly bands",
            matrix: generators::banded(2048, 2048, 4, 60_000, 13),
        },
        ZooMatrix {
            name: "mid-power-law",
            why: "skewed row lengths: nnz-balanced partitioning matters",
            matrix: generators::power_law(2048, 2048, 100_000, 1.3, 14),
        },
        ZooMatrix {
            name: "large-uniform",
            why: "large scattered work, low block fill",
            matrix: generators::uniform(4096, 4096, 200_000, 15),
        },
        ZooMatrix {
            name: "large-clustered",
            why: "large work in short dense runs: blocked formats win",
            matrix: generators::clustered(4096, 4096, 300_000, 6, 16),
        },
        ZooMatrix {
            name: "blocky-full-fill",
            why: "100% locality at 8-wide blocks: SMASH's best case",
            matrix: locality::with_locality(2048, 2048, 120_000, 8, 1.0, 17),
        },
        ZooMatrix {
            name: "scattered-low-fill",
            why: "one non-zero per 8-wide block: padding worst case",
            matrix: locality::with_locality(2048, 2048, 120_000, 8, 0.125, 18),
        },
        ZooMatrix {
            name: "tall-skinny",
            why: "many rows, few columns: row-range dispatch is cheap",
            matrix: generators::uniform(8192, 128, 80_000, 19),
        },
    ]
}

/// One dispatch candidate of the calibration grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Operation the measurement times.
    pub op: Op,
    /// Storage format of the kernel.
    pub format: Format,
    /// Worker threads (1 = the serial kernel).
    pub threads: usize,
    /// RHS tile width the measurement leads with (1 for non-batched
    /// ops; the batched rows are measured at [`CALIBRATION_RHS`]).
    pub tile: usize,
}

/// RHS batch width the `spmm_dense` candidates are calibrated at (the
/// widest register tile of the single-definition tile schedule).
pub const CALIBRATION_RHS: usize = 8;

/// The full candidate grid measured per zoo matrix: every row of the
/// checked-in calibration table corresponds to one entry here.
pub fn candidates() -> Vec<Candidate> {
    let mut grid = Vec::new();
    for format in [Format::Csr, Format::Bcsr, Format::Smash] {
        for threads in [1usize, 2, 4] {
            grid.push(Candidate {
                op: Op::Spmv,
                format,
                threads,
                tile: 1,
            });
        }
        for threads in [1usize, 4] {
            grid.push(Candidate {
                op: Op::SpmmDense,
                format,
                threads,
                tile: CALIBRATION_RHS,
            });
        }
    }
    for threads in [1usize, 4] {
        grid.push(Candidate {
            op: Op::Spgemm,
            format: Format::Csr,
            threads,
            tile: 1,
        });
        grid.push(Candidate {
            op: Op::Encode,
            format: Format::Smash,
            threads,
            tile: 1,
        });
    }
    grid
}

/// Formats one `matrix` line of the calibration table for `profile`.
pub fn matrix_line(name: &str, p: &MatrixProfile) -> String {
    format!(
        "matrix {name} rows={} cols={} nnz={} row_mean={:.6} row_cv={:.6} row_max={} fill8={:.6}",
        p.rows,
        p.cols,
        p.nnz,
        p.row_mean,
        p.row_cv,
        p.row_max,
        p.block_fill.unwrap_or(0.0)
    )
}

/// Formats one measured `row` line of the calibration table.
pub fn row_line(name: &str, c: &Candidate, work: f64, ns: f64) -> String {
    format!(
        "row {name} op={} format={} threads={} tile={} work={work:.0} ns={ns:.1}",
        c.op, c.format, c.threads, c.tile
    )
}

/// Median-of-`samples` wall-clock nanoseconds for `f`, amortized over
/// `reps` inner repetitions. The shared timing loop of the snapshot
/// binaries.
pub fn time_ns<F: FnMut() -> usize>(samples: usize, reps: usize, mut f: F) -> f64 {
    let mut out = Vec::with_capacity(samples);
    let mut sink = 0usize;
    for _ in 0..samples {
        let t = std::time::Instant::now();
        for _ in 0..reps {
            sink = sink.wrapping_add(f());
        }
        out.push(t.elapsed().as_nanos() as f64 / reps as f64);
    }
    std::hint::black_box(sink);
    out.sort_by(|a, b| a.total_cmp(b));
    out[out.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_is_deterministic_and_diverse() {
        let a = planner_zoo();
        let b = planner_zoo();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.matrix, y.matrix, "{} must regenerate identically", x.name);
        }
        // Names are unique.
        let mut names: Vec<_> = a.iter().map(|z| z.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), a.len());
        // The fill feature actually spans its range across the zoo.
        let fills: Vec<f64> = a.iter().map(|z| z.profile().block_fill.unwrap()).collect();
        assert!(fills.iter().cloned().fold(0.0, f64::max) > 0.9);
        assert!(fills.iter().cloned().fold(1.0, f64::min) < 0.3);
    }

    #[test]
    fn candidate_grid_covers_every_op_and_both_tiers() {
        let grid = candidates();
        for op in [Op::Spmv, Op::SpmmDense, Op::Spgemm, Op::Encode] {
            assert!(grid.iter().any(|c| c.op == op && c.threads == 1));
            assert!(grid.iter().any(|c| c.op == op && c.threads > 1));
        }
    }
}
