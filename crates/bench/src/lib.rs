//! Criterion benchmark harness for the SMASH reproduction (see `benches/`).
