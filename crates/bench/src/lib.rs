//! Criterion benchmark harness for the SMASH reproduction (see
//! `benches/`), plus the shared fixtures of the perf-snapshot binaries
//! under `src/bin/` — most importantly the [`zoo`] the planner is
//! calibrated and validated on.
//!
//! What each snapshot asserts, and how to regenerate it, is documented
//! in `docs/BENCHMARKS.md` at the repository root.

#![deny(missing_docs)]

pub mod zoo;
